// Cooperative deterministic runtime for shared-memory protocols.
//
// The paper's shared-memory substrates (Sections 2 items 4-5, 4.2) are
// asynchronous: correctness must hold for *every* interleaving of process
// steps and every crash pattern. This runtime executes each simulated
// process on its own OS thread but serializes them with a baton: exactly
// one process runs at a time, and a Scheduler decides who steps next.
// Every shared-memory operation calls Context::step(), which is the only
// interleaving point -- so a run is fully determined by the schedule, and
// schedules can be random (seeded), scripted, or enumerated exhaustively
// (runtime/explorer.h).
//
// Crashes are injected by the scheduler: a crashed process's next step()
// throws Crashed, unwinding its stack; the protocol simply stops there,
// exactly like a crash in the asynchronous shared-memory model.
#pragma once

#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/process_set.h"
#include "core/types.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rrfd::runtime {

using core::ProcId;
using core::ProcessSet;

/// Thrown inside a simulated process when the scheduler crashes it. Do not
/// catch it in protocol code -- the runtime handles the unwinding.
struct Crashed {};

/// Thrown by Simulation::run when the step budget is exhausted (indicating
/// a non-wait-free protocol or a livelocked schedule).
class StepBudgetExhausted : public std::runtime_error {
 public:
  explicit StepBudgetExhausted(int steps)
      : std::runtime_error("simulation exceeded step budget of " +
                           std::to_string(steps)) {}
};

class Simulation;

/// Handle a process body uses to interact with the runtime.
class Context {
 public:
  /// This process's identifier.
  ProcId id() const { return id_; }

  /// Number of processes in the simulation.
  int n() const;

  /// Interleaving point: yields to the scheduler and blocks until granted
  /// the next step. Every shared-memory operation calls this exactly once
  /// before touching memory. Throws Crashed if this process was crashed.
  void step();

 private:
  friend class Simulation;
  Context(Simulation* sim, ProcId id) : sim_(sim), id_(id) {}

  Simulation* sim_;
  ProcId id_;
};

/// Chooses the next process to step. Called with the set of processes that
/// are alive and not finished; must return a member of it (or a crash
/// decision for a member).
class Scheduler {
 public:
  struct Choice {
    ProcId next;         ///< who acts
    bool crash = false;  ///< if true, `next` is crashed instead of stepping
  };

  virtual ~Scheduler() = default;
  virtual Choice pick(const ProcessSet& runnable, int step) = 0;
};

/// Outcome of a simulation run.
struct SimOutcome {
  ProcessSet completed;  ///< ran their body to completion
  ProcessSet crashed;    ///< were crashed by the scheduler
  int steps = 0;         ///< total steps granted
  std::vector<ProcId> schedule;  ///< the step sequence actually taken

  explicit SimOutcome(int n) : completed(n), crashed(n) {}
};

/// Runs n process bodies under a scheduler. Single-use: construct, run once.
class Simulation {
 public:
  using Body = std::function<void(Context&)>;

  /// Same body for every process (distinguished by Context::id()).
  Simulation(int n, Body body);

  /// One body per process.
  explicit Simulation(std::vector<Body> bodies);

  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Executes to completion (every process finished or crashed).
  /// Exceptions other than Crashed thrown by process bodies are captured
  /// and rethrown here after the run is wound down.
  SimOutcome run(Scheduler& scheduler, int max_steps = 1 << 20);

  int n() const { return static_cast<int>(bodies_.size()); }

 private:
  friend class Context;

  enum class State { kNotStarted, kBlocked, kRunning, kDone };

  void process_main(ProcId id);
  void process_step(ProcId id);  // Context::step body
  void grant(ProcId id);
  void await_yield();
  void crash_all_remaining(ProcessSet remaining, SimOutcome& outcome);

  // rrfd-lint: allow(guarded-member) -- ctor-written, read-only afterwards
  std::vector<Body> bodies_;
  // rrfd-lint: allow(guarded-member) -- scheduler-thread-only (single-use)
  std::vector<std::thread> threads_;

  rrfd::Mutex mu_;
  rrfd::CondVar cv_;
  ProcId turn_ RRFD_GUARDED_BY(mu_) = -1;  // -1: scheduler's turn
  std::vector<State> states_ RRFD_GUARDED_BY(mu_);
  std::vector<bool> crash_flags_ RRFD_GUARDED_BY(mu_);
  /// done (completed or crashed)
  std::vector<bool> finished_ RRFD_GUARDED_BY(mu_);
  std::exception_ptr first_error_ RRFD_GUARDED_BY(mu_);
  // rrfd-lint: allow(guarded-member) -- scheduler-thread-only (single-use)
  bool started_ = false;
};

}  // namespace rrfd::runtime
