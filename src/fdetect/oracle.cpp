#include "fdetect/oracle.h"

#include "util/check.h"

namespace rrfd::fdetect {

CrashSchedule::CrashSchedule(int n)
    : n_(n), crash_times_(static_cast<std::size_t>(n), -1) {
  RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
}

void CrashSchedule::crash_at(ProcId p, long time) {
  RRFD_REQUIRE(0 <= p && p < n_);
  RRFD_REQUIRE(time >= 0);
  crash_times_[static_cast<std::size_t>(p)] = time;
}

long CrashSchedule::crash_time(ProcId p) const {
  RRFD_REQUIRE(0 <= p && p < n_);
  return crash_times_[static_cast<std::size_t>(p)];
}

ProcessSet CrashSchedule::crashed_by(long time) const {
  ProcessSet out(n_);
  for (ProcId p = 0; p < n_; ++p) {
    if (is_crashed(p, time)) out.add(p);
  }
  return out;
}

ProcessSet CrashSchedule::correct() const {
  ProcessSet out(n_);
  for (ProcId p = 0; p < n_; ++p) {
    if (crash_time(p) < 0) out.add(p);
  }
  return out;
}

ProcessSet PerfectOracle::suspects(ProcId /*i*/, long time) {
  return schedule_.crashed_by(time);
}

namespace {

ProcId pick_immortal(const CrashSchedule& schedule, Rng& rng,
                     ProcId requested) {
  if (requested >= 0) {
    RRFD_REQUIRE_MSG(schedule.crash_time(requested) < 0,
                     "the never-suspected process must be correct");
    return requested;
  }
  const ProcessSet correct = schedule.correct();
  RRFD_REQUIRE_MSG(!correct.empty(), "some process must be correct");
  const std::vector<ProcId> members = correct.members();
  return members[static_cast<std::size_t>(rng.below(members.size()))];
}

}  // namespace

StrongOracle::StrongOracle(const CrashSchedule& schedule, std::uint64_t seed,
                           ProcId never_suspected, double false_suspicion)
    : schedule_(schedule),
      rng_(seed),
      immortal_(pick_immortal(schedule, rng_, never_suspected)),
      false_suspicion_(false_suspicion) {}

ProcessSet StrongOracle::suspects(ProcId i, long time) {
  // Strong completeness: everything crashed. Capricious inaccuracy:
  // random false suspicions, except the designated process.
  ProcessSet out = schedule_.crashed_by(time);
  for (ProcId p = 0; p < schedule_.n(); ++p) {
    if (p == immortal_ || p == i || out.contains(p)) continue;
    if (rng_.chance(false_suspicion_)) out.add(p);
  }
  RRFD_ENSURE(!out.contains(immortal_));
  return out;
}

EventuallyStrongOracle::EventuallyStrongOracle(const CrashSchedule& schedule,
                                               std::uint64_t seed,
                                               long stabilization_time,
                                               ProcId never_suspected,
                                               double false_suspicion)
    : schedule_(schedule),
      rng_(seed),
      stabilization_(stabilization_time),
      immortal_(pick_immortal(schedule, rng_, never_suspected)),
      false_suspicion_(false_suspicion) {
  RRFD_REQUIRE(stabilization_time >= 0);
}

ProcessSet EventuallyStrongOracle::suspects(ProcId i, long time) {
  ProcessSet out = schedule_.crashed_by(time);
  for (ProcId p = 0; p < schedule_.n(); ++p) {
    if (p == i || out.contains(p)) continue;
    // Before stabilization even the designated process may be suspected.
    if (p == immortal_ && time >= stabilization_) continue;
    if (rng_.chance(false_suspicion_)) out.add(p);
  }
  return out;
}

}  // namespace rrfd::fdetect
