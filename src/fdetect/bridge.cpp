#include "fdetect/bridge.h"

#include <algorithm>

#include "util/check.h"

namespace rrfd::fdetect {

DetectorBridge::DetectorBridge(const CrashSchedule& schedule, Oracle& oracle,
                               std::uint64_t seed, int max_delay)
    : schedule_(schedule), oracle_(oracle), rng_(seed), max_delay_(max_delay) {
  RRFD_REQUIRE(max_delay >= 1);
}

BridgeResult DetectorBridge::run(core::Round rounds) {
  RRFD_REQUIRE(rounds >= 1);
  const int n = schedule_.n();
  BridgeResult result(n);
  result.completion_ticks.assign(
      static_cast<std::size_t>(rounds),
      std::vector<long>(static_cast<std::size_t>(n), -1));

  for (core::Round r = 1; r <= rounds; ++r) {
    const ProcessSet alive = schedule_.crashed_by(now_).complement();
    result.crashed_during_run = schedule_.crashed_by(now_);

    // Alive processes broadcast; each copy gets a random delivery tick.
    // delivered_at[j][i]: when j's round-r message reaches i (-1: never,
    // because j is crashed and sends nothing).
    std::vector<std::vector<long>> delivered_at(
        static_cast<std::size_t>(n),
        std::vector<long>(static_cast<std::size_t>(n), -1));
    long horizon = now_;
    for (ProcId j : alive.members()) {
      for (ProcId i = 0; i < n; ++i) {
        const long at =
            now_ + 1 +
            static_cast<long>(rng_.below(static_cast<std::uint64_t>(max_delay_)));
        delivered_at[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
            at;
        horizon = std::max(horizon, at);
      }
    }

    // Advance ticks; each waiting alive process completes at the first
    // tick where everything still missing is suspected by its oracle.
    core::RoundFaults announcements(static_cast<std::size_t>(n),
                                    ProcessSet::none(n));
    ProcessSet waiting = alive;
    long tick = now_;
    while (!waiting.empty()) {
      ++tick;
      RRFD_ENSURE_MSG(
          tick <= horizon + static_cast<long>(n) * max_delay_ + 4,
          "detector bridge failed to complete a round: the oracle lacks "
          "completeness");
      for (ProcId i : waiting.members()) {
        ProcessSet missing(n);
        for (ProcId j = 0; j < n; ++j) {
          const long at = delivered_at[static_cast<std::size_t>(j)]
                                      [static_cast<std::size_t>(i)];
          if (at < 0 || at > tick) missing.add(j);
        }
        if (missing.empty() ||
            missing.subset_of(oracle_.suspects(i, tick))) {
          announcements[static_cast<std::size_t>(i)] = missing;
          result.completion_ticks[static_cast<std::size_t>(r - 1)]
                                 [static_cast<std::size_t>(i)] = tick;
          waiting.remove(i);
        }
      }
    }
    now_ = tick;
    result.pattern.append(announcements);
  }
  return result;
}

}  // namespace rrfd::fdetect
