// Classical (Chandra-Toueg style) failure-detector oracles.
//
// Section 7: "it will be interesting to show that in a precise sense
// RRFD generalizes the earlier notion of fault-detector [5,6,7,8], and
// rederive the associated results." This module supplies the other side
// of that bridge: time-indexed suspicion oracles with the classical
// completeness/accuracy axes, over an explicit crash schedule. The
// bridge itself (fdetect/bridge.h) turns an oracle-augmented
// asynchronous execution into an RRFD fault pattern.
//
// Oracles are *unreliable*: within their class guarantees they may
// suspect correct processes, disagree between observers, and change
// their minds -- exactly the behaviours the RRFD inherits.
#pragma once

#include <memory>
#include <string>

#include "core/process_set.h"
#include "core/types.h"
#include "util/rng.h"

namespace rrfd::fdetect {

using core::ProcId;
using core::ProcessSet;

/// When each process crashes (time is an abstract monotone counter; -1 =
/// never). Used both to drive oracles and to cut processes out of the
/// execution.
class CrashSchedule {
 public:
  explicit CrashSchedule(int n);

  int n() const { return n_; }

  /// Declares that `p` crashes at `time`.
  void crash_at(ProcId p, long time);

  /// Processes crashed at or before `time`.
  ProcessSet crashed_by(long time) const;

  /// Processes that never crash.
  ProcessSet correct() const;

  bool is_crashed(ProcId p, long time) const {
    return crash_time(p) >= 0 && crash_time(p) <= time;
  }

  long crash_time(ProcId p) const;

 private:
  int n_;
  std::vector<long> crash_times_;
};

/// A failure-detector oracle: per observer, per time, a suspected set.
class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string name() const = 0;

  /// The set observer `i` suspects at `time`.
  virtual ProcessSet suspects(ProcId i, long time) = 0;
};

/// P (perfect): suspects exactly the crashed processes -- strong
/// completeness and strong accuracy.
class PerfectOracle final : public Oracle {
 public:
  explicit PerfectOracle(const CrashSchedule& schedule)
      : schedule_(schedule) {}
  std::string name() const override { return "P"; }
  ProcessSet suspects(ProcId i, long time) override;

 private:
  const CrashSchedule& schedule_;
};

/// S (strong): strong completeness (every crashed process is suspected,
/// here immediately) + weak accuracy (one designated correct process is
/// never suspected by anyone). Other correct processes may be suspected
/// capriciously.
class StrongOracle final : public Oracle {
 public:
  StrongOracle(const CrashSchedule& schedule, std::uint64_t seed,
               ProcId never_suspected = -1, double false_suspicion = 0.3);
  std::string name() const override { return "S"; }
  ProcessSet suspects(ProcId i, long time) override;

  ProcId never_suspected() const { return immortal_; }

 private:
  const CrashSchedule& schedule_;
  Rng rng_;
  ProcId immortal_;
  double false_suspicion_;
};

/// Diamond-S (eventually strong): like S, but weak accuracy holds only
/// from `stabilization_time` on -- before that even the designated
/// process may be suspected.
class EventuallyStrongOracle final : public Oracle {
 public:
  EventuallyStrongOracle(const CrashSchedule& schedule, std::uint64_t seed,
                         long stabilization_time, ProcId never_suspected = -1,
                         double false_suspicion = 0.3);
  std::string name() const override { return "diamond-S"; }
  ProcessSet suspects(ProcId i, long time) override;

  long stabilization_time() const { return stabilization_; }
  ProcId never_suspected() const { return immortal_; }

 private:
  const CrashSchedule& schedule_;
  Rng rng_;
  long stabilization_;
  ProcId immortal_;
  double false_suspicion_;
};

}  // namespace rrfd::fdetect
