// The bridge from classical failure detectors to RRFDs.
//
// Item 6 describes it operationally: "Processes use the failure detector
// S to advance from one round to the next. Thus, D(i,r) is the value
// that allows p_i to complete round r." Concretely: in round r every
// alive process broadcasts; process i blocks until every peer has either
// delivered its round-r message or is currently suspected by i's oracle;
// the still-missing set at that moment is D(i,r).
//
// The bridge turns any oracle-augmented asynchronous execution into a
// fault pattern, after which the RRFD machinery applies verbatim:
//   * strong completeness makes the wait terminate (crashed senders are
//     suspected, so nobody waits for them forever);
//   * S's weak accuracy means one process is never suspected, hence never
//     in any D(i,r) -- the ImmortalProcess predicate -- so the rotating-
//     coordinator algorithm solves consensus (run the pattern through
//     the engine with a ScriptedAdversary);
//   * diamond-S only guarantees that *eventually*: pre-stabilization
//     rounds may lack an immortal and the n-round algorithm can fail if
//     started too early, while any n-round window after stabilization
//     succeeds. This is precisely "RRFD generalizes the earlier notion
//     of fault-detector" (Section 7), rederived executably.
#pragma once

#include "core/fault_pattern.h"
#include "fdetect/oracle.h"

namespace rrfd::fdetect {

struct BridgeResult {
  core::FaultPattern pattern;
  /// Global tick at which each process completed each round
  /// (ticks[r-1][i]; -1 once the process has crashed).
  std::vector<std::vector<long>> completion_ticks;
  core::ProcessSet crashed_during_run;

  explicit BridgeResult(int n) : pattern(n), crashed_during_run(n) {}
};

/// Runs `rounds` detector-driven rounds over an asynchronous message
/// exchange with randomized per-message delivery delays (1..max_delay
/// ticks). The oracle is queried with the advancing global tick, so
/// stabilization-time semantics are honoured.
class DetectorBridge {
 public:
  DetectorBridge(const CrashSchedule& schedule, Oracle& oracle,
                 std::uint64_t seed, int max_delay = 8);

  BridgeResult run(core::Round rounds);

 private:
  const CrashSchedule& schedule_;
  Oracle& oracle_;
  Rng rng_;
  int max_delay_;
  long now_ = 0;
};

}  // namespace rrfd::fdetect
