// Consensus algorithms for the semi-synchronous (DDS) model.
//
// TwoStepConsensus -- Section 5's result: one 2-step round implements the
//   equal-announcement detector (equation 5, i.e. k-uncertainty with
//   k = 1), and Theorem 3.1's one-round rule then decides: adopt the value
//   of the lowest-identifier process heard. Decides after exactly 2 steps.
//
// NaiveRepeatConsensus -- the baseline at DDS's original step complexity:
//   it does not trust a single round and instead iterates the round
//   structure n times (2n steps) before deciding, updating its value to
//   the lowest-id heard value each round. This stands in for the 2n-step
//   DDS algorithm the paper improves on (see DESIGN.md, substitutions).
#pragma once

#include "semisync/round_exchange.h"

namespace rrfd::semisync {

/// Section 5's 2-step consensus.
class TwoStepConsensus final : public StepProcess {
 public:
  TwoStepConsensus(int n, ProcId self, int input)
      : exchange_(n, self), value_(input) {}

  std::optional<Broadcast> step(const std::vector<Envelope>& received) override {
    std::optional<Broadcast> out;
    auto view = exchange_.on_step(received, value_, out);
    if (view) {
      adopt_lowest(*view);
      decided_ = true;
      last_view_.emplace(*view);
    }
    return out;
  }

  bool decided() const override { return decided_; }
  int decision() const override {
    RRFD_REQUIRE(decided_);
    return value_;
  }

  /// The round view the decision was based on (for Theorem 5.1 checks).
  const std::optional<RoundExchange::RoundView>& last_view() const {
    return last_view_;
  }

 private:
  void adopt_lowest(const RoundExchange::RoundView& view) {
    // Theorem 3.1's rule. With phi = 1 `heard` is never empty (the round's
    // broadcaster reaches everyone); beyond the model's guarantee (phi
    // >= 2) it can be, in which case we keep our own value -- agreement
    // may then fail, which is exactly the boundary bench E4b maps.
    if (!view.heard.empty()) value_ = view.values.at(view.heard.min());
  }

  RoundExchange exchange_;
  int value_;
  bool decided_ = false;
  std::optional<RoundExchange::RoundView> last_view_;
};

/// Baseline: iterates the 2-step round structure `rounds` times (default
/// n) before deciding -- 2n steps, DDS's original complexity.
class NaiveRepeatConsensus final : public StepProcess {
 public:
  NaiveRepeatConsensus(int n, ProcId self, int input, int rounds = -1)
      : exchange_(n, self), value_(input), rounds_(rounds < 0 ? n : rounds) {
    RRFD_REQUIRE(rounds_ >= 1);
  }

  std::optional<Broadcast> step(const std::vector<Envelope>& received) override {
    std::optional<Broadcast> out;
    auto view = exchange_.on_step(received, value_, out);
    if (view) {
      if (!view->heard.empty()) value_ = view->values.at(view->heard.min());
      if (view->round >= rounds_) decided_ = true;
    }
    return out;
  }

  bool decided() const override { return decided_; }
  int decision() const override {
    RRFD_REQUIRE(decided_);
    return value_;
  }

 private:
  RoundExchange exchange_;
  int value_;
  int rounds_;
  bool decided_ = false;
};

}  // namespace rrfd::semisync
