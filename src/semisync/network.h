// The semi-synchronous model of Dolev, Dwork & Stockmeyer (Section 5).
//
// Properties, as the paper lists them:
//   * no bounds on relative process speeds (the scheduler orders steps
//     arbitrarily);
//   * crash failures (a crashed process simply stops taking steps; the
//     simulator also stops buffering messages for it and discards its
//     inbox, since nothing will ever drain it);
//   * each step atomically receives all buffered messages and then
//     broadcasts at most one message;
//   * broadcast is reliable: a sent message is eventually delivered to
//     every process;
//   * bounded delivery: a message sent at global event e is in process
//     k's buffer no later than k's phi-th step after e. phi = 1 is the
//     DDS "synchronous communication" reading (delivered before the
//     recipient's next step); the paper's extended abstract leaves the
//     constant garbled, so the simulator exposes it as a knob and
//     bench_semisync locates the guarantee boundary (Theorem 5.1 holds at
//     phi = 1 and is violated by schedules at phi >= 2).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/process_set.h"
#include "core/types.h"
#include "util/rng.h"

namespace rrfd::semisync {

using core::ProcId;
using core::ProcessSet;

/// A message in flight or delivered. `round` is algorithm-level tagging
/// (every Section-5 algorithm tags messages with its round number).
struct Envelope {
  ProcId sender = -1;
  int round = 0;
  int payload = 0;
};

/// What a process asks the network to broadcast at a step.
struct Broadcast {
  int round = 0;
  int payload = 0;
};

/// A process in the step model. One step() call = one atomic
/// receive-then-broadcast step.
class StepProcess {
 public:
  virtual ~StepProcess() = default;

  /// `received`: everything delivered at this step, in send order.
  /// Returns the broadcast for this step, or nullopt to stay silent.
  virtual std::optional<Broadcast> step(const std::vector<Envelope>& received) = 0;

  /// A decided process halts (takes no further steps).
  virtual bool decided() const = 0;
  virtual int decision() const = 0;
};

/// Simulation options.
struct StepSimOptions {
  int phi = 1;                    ///< delivery bound (see header comment)
  double early_delivery_prob = 0.5;  ///< chance a not-yet-due message is
                                     ///< delivered early (phi > 1 only)
  std::uint64_t seed = 1;         ///< scheduler + early-delivery seed
  long max_events = 1 << 20;      ///< global step budget
};

/// Result of a run.
struct StepSimResult {
  long events = 0;                 ///< total steps taken (all processes)
  std::vector<int> steps_taken;    ///< per-process step counts
  bool all_alive_decided = false;  ///< every non-crashed process decided
  ProcessSet crashed;

  explicit StepSimResult(int n)
      : steps_taken(static_cast<std::size_t>(n), 0), crashed(n) {}
};

/// Event-driven simulator for the step model. Non-owning over processes.
class StepSim {
 public:
  StepSim(std::vector<StepProcess*> processes, StepSimOptions options);

  /// Crashes process p once it has taken exactly `after_steps` steps
  /// (0 = never runs). Call before run().
  void crash_after(ProcId p, int after_steps);

  /// Replay mode: consume (process, delivered-count) pairs, as recorded by
  /// the flight recorder's sched events, instead of the seeded scheduler
  /// and early-delivery coin flips. Each scripted process must be eligible
  /// at its turn; violations raise ContractViolation. See trace/replay.h.
  void replay_steps(std::vector<std::pair<ProcId, int>> steps);

  /// Runs until every alive process has decided (or budget exhausted).
  StepSimResult run();

  /// Buffered (undelivered) messages currently pending for process p.
  /// Crashed processes receive no further messages and their inbox is
  /// discarded at the crash, so this stays bounded for them.
  std::size_t inbox_size(ProcId p) const;

 private:
  struct Pending {
    Envelope env;
    int age = 0;  ///< steps the recipient has taken since the send
  };

  void deliver_and_step(ProcId p, StepSimResult& result);
  void crash_now(ProcId p, StepSimResult& result);

  std::vector<StepProcess*> processes_;
  StepSimOptions options_;
  Rng rng_;
  std::vector<std::deque<Pending>> inboxes_;   // per recipient
  std::vector<int> crash_after_;               // -1 = never
  ProcessSet crashed_;                         // stops enqueue/step at once
  bool replaying_ = false;
  std::vector<std::pair<ProcId, int>> replay_steps_;
  std::size_t replay_next_ = 0;
};

}  // namespace rrfd::semisync
