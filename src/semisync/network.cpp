#include "semisync/network.h"

#include "core/words.h"
#include "trace/trace.h"
#include "util/check.h"

namespace rrfd::semisync {

namespace {
constexpr auto kSub = trace::Substrate::kSemisync;
}  // namespace

StepSim::StepSim(std::vector<StepProcess*> processes, StepSimOptions options)
    : processes_(std::move(processes)),
      options_(options),
      rng_(options.seed),
      inboxes_(processes_.size()),
      crash_after_(processes_.size(), -1),
      crashed_(static_cast<int>(processes_.size())) {
  RRFD_REQUIRE(!processes_.empty() &&
               static_cast<int>(processes_.size()) <= core::kMaxProcesses);
  for (StepProcess* p : processes_) RRFD_REQUIRE(p != nullptr);
  RRFD_REQUIRE(options_.phi >= 1);
}

void StepSim::crash_after(ProcId p, int after_steps) {
  RRFD_REQUIRE(0 <= p && p < static_cast<int>(processes_.size()));
  RRFD_REQUIRE(after_steps >= 0);
  crash_after_[static_cast<std::size_t>(p)] = after_steps;
}

void StepSim::replay_steps(std::vector<std::pair<ProcId, int>> steps) {
  replaying_ = true;
  replay_steps_ = std::move(steps);
  replay_next_ = 0;
}

std::size_t StepSim::inbox_size(ProcId p) const {
  RRFD_REQUIRE(0 <= p && p < static_cast<int>(processes_.size()));
  return inboxes_[static_cast<std::size_t>(p)].size();
}

void StepSim::crash_now(ProcId p, StepSimResult& result) {
  const auto pi = static_cast<std::size_t>(p);
  result.crashed.add(p);
  crashed_.add(p);
  // A crashed process never steps again, so nothing will ever drain its
  // inbox: drop it now, and broadcast() skips it from here on. (It used to
  // keep accumulating one copy of every broadcast for the rest of the run.)
  inboxes_[pi].clear();
  trace::record(trace::EventKind::kCrash, kSub, p, result.steps_taken[pi]);
}

void StepSim::deliver_and_step(ProcId p, StepSimResult& result) {
  const auto pi = static_cast<std::size_t>(p);

  // Deliver: everything due (age >= phi-1) must arrive now; younger
  // messages may arrive early at the adversary's whim. Buffers are FIFO,
  // and a delivered message unblocks everything sent before it (otherwise
  // delivery order could invert sends). Under replay the count is scripted
  // (it subsumes the early-delivery coin flips).
  std::deque<Pending>& inbox = inboxes_[pi];
  std::size_t take = 0;
  if (replaying_) {
    const int scripted = replay_steps_[replay_next_ - 1].second;
    RRFD_ENSURE_MSG(0 <= scripted &&
                        static_cast<std::size_t>(scripted) <= inbox.size(),
                    "replayed delivery count exceeds the pending inbox");
    take = static_cast<std::size_t>(scripted);
  } else {
    for (std::size_t idx = 0; idx < inbox.size(); ++idx) {
      const bool due = inbox[idx].age >= options_.phi - 1;
      if (due || rng_.chance(options_.early_delivery_prob)) take = idx + 1;
    }
  }
  trace::record(trace::EventKind::kSchedChoice, kSub, p,
                static_cast<std::int32_t>(result.events),
                static_cast<std::uint64_t>(take));
  std::vector<Envelope> received;
  received.reserve(take);
  for (std::size_t idx = 0; idx < take; ++idx) {
    const Envelope& env = inbox.front().env;
    trace::record(trace::EventKind::kDeliver, kSub, p, env.round,
                  static_cast<std::uint64_t>(env.sender),
                  static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(env.payload)));
    received.push_back(env);
    inbox.pop_front();
  }
  // Remaining pending messages age by one recipient step.
  for (Pending& m : inbox) ++m.age;

  const bool was_decided = processes_[pi]->decided();
  std::optional<Broadcast> out = processes_[pi]->step(received);
  ++result.steps_taken[pi];
  ++result.events;

  if (out) {
    trace::record(trace::EventKind::kEmit, kSub, p, out->round,
                  static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(out->payload)),
                  1);
    const Envelope env{p, out->round, out->payload};
    for (std::size_t q = 0; q < processes_.size(); ++q) {
      // Crashed processes take no further steps; buffering for them only
      // grows memory without ever being read.
      if (crashed_.contains(static_cast<ProcId>(q))) continue;
      inboxes_[q].push_back(Pending{env, 0});
    }
  }
  if (!was_decided && processes_[pi]->decided()) {
    trace::record(trace::EventKind::kDecide, kSub, p, result.steps_taken[pi],
                  static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(processes_[pi]->decision())),
                  1);
  }
}

StepSimResult StepSim::run() {
  const int n = static_cast<int>(processes_.size());
  StepSimResult result(n);

  trace::record(trace::EventKind::kRunBegin, kSub, n, 0,
                static_cast<std::uint64_t>(options_.phi),
                static_cast<std::uint64_t>(options_.max_events));

  for (ProcId p = 0; p < n; ++p) {
    if (crash_after_[static_cast<std::size_t>(p)] == 0) crash_now(p, result);
  }

  while (result.events < options_.max_events) {
    // Eligible: alive, undecided.
    ProcessSet eligible(n);
    for (ProcId p = 0; p < n; ++p) {
      if (!result.crashed.contains(p) &&
          !processes_[static_cast<std::size_t>(p)]->decided()) {
        eligible.add(p);
      }
    }
    if (eligible.empty()) {
      result.all_alive_decided = true;
      break;
    }

    ProcId p;
    if (replaying_) {
      if (replay_next_ >= replay_steps_.size()) break;  // script consumed
      p = replay_steps_[replay_next_++].first;
      RRFD_ENSURE_MSG(eligible.contains(p),
                      "replayed step choice is not eligible at this point");
    } else {
      // k-th eligible process in id order == eligible.members()[k],
      // without allocating the vector on every event.
      p = core::nth_set_bit(
          eligible.bits(),
          static_cast<int>(
              rng_.below(static_cast<std::uint64_t>(eligible.size()))));
    }
    deliver_and_step(p, result);

    const auto pi = static_cast<std::size_t>(p);
    if (crash_after_[pi] >= 0 && result.steps_taken[pi] >= crash_after_[pi] &&
        !result.crashed.contains(p)) {
      crash_now(p, result);
    }
  }

  trace::record(trace::EventKind::kRunEnd, kSub, -1,
                static_cast<std::int32_t>(result.events),
                result.all_alive_decided ? 1 : 0, result.crashed.bits());
  return result;  // budget exhausted unless the loop broke with all decided
}

}  // namespace rrfd::semisync
