#include "semisync/network.h"

#include "util/check.h"

namespace rrfd::semisync {

StepSim::StepSim(std::vector<StepProcess*> processes, StepSimOptions options)
    : processes_(std::move(processes)),
      options_(options),
      rng_(options.seed),
      inboxes_(processes_.size()),
      crash_after_(processes_.size(), -1) {
  RRFD_REQUIRE(!processes_.empty() &&
               static_cast<int>(processes_.size()) <= core::kMaxProcesses);
  for (StepProcess* p : processes_) RRFD_REQUIRE(p != nullptr);
  RRFD_REQUIRE(options_.phi >= 1);
}

void StepSim::crash_after(ProcId p, int after_steps) {
  RRFD_REQUIRE(0 <= p && p < static_cast<int>(processes_.size()));
  RRFD_REQUIRE(after_steps >= 0);
  crash_after_[static_cast<std::size_t>(p)] = after_steps;
}

void StepSim::deliver_and_step(ProcId p, StepSimResult& result) {
  const auto pi = static_cast<std::size_t>(p);

  // Deliver: everything due (age >= phi-1) must arrive now; younger
  // messages may arrive early at the adversary's whim. Buffers are FIFO,
  // and a delivered message unblocks everything sent before it (otherwise
  // delivery order could invert sends).
  std::deque<Pending>& inbox = inboxes_[pi];
  std::size_t take = 0;
  for (std::size_t idx = 0; idx < inbox.size(); ++idx) {
    const bool due = inbox[idx].age >= options_.phi - 1;
    if (due || rng_.chance(options_.early_delivery_prob)) take = idx + 1;
  }
  std::vector<Envelope> received;
  received.reserve(take);
  for (std::size_t idx = 0; idx < take; ++idx) {
    received.push_back(inbox.front().env);
    inbox.pop_front();
  }
  // Remaining pending messages age by one recipient step.
  for (Pending& m : inbox) ++m.age;

  std::optional<Broadcast> out = processes_[pi]->step(received);
  ++result.steps_taken[pi];
  ++result.events;

  if (out) {
    const Envelope env{p, out->round, out->payload};
    for (std::size_t q = 0; q < processes_.size(); ++q) {
      inboxes_[q].push_back(Pending{env, 0});
    }
  }
}

StepSimResult StepSim::run() {
  const int n = static_cast<int>(processes_.size());
  StepSimResult result(n);

  for (ProcId p = 0; p < n; ++p) {
    if (crash_after_[static_cast<std::size_t>(p)] == 0) result.crashed.add(p);
  }

  while (result.events < options_.max_events) {
    // Eligible: alive, undecided.
    ProcessSet eligible(n);
    for (ProcId p = 0; p < n; ++p) {
      if (!result.crashed.contains(p) &&
          !processes_[static_cast<std::size_t>(p)]->decided()) {
        eligible.add(p);
      }
    }
    if (eligible.empty()) {
      result.all_alive_decided = true;
      return result;
    }

    const std::vector<ProcId> members = eligible.members();
    const ProcId p =
        members[static_cast<std::size_t>(rng_.below(members.size()))];
    deliver_and_step(p, result);

    const auto pi = static_cast<std::size_t>(p);
    if (crash_after_[pi] >= 0 && result.steps_taken[pi] >= crash_after_[pi]) {
      result.crashed.add(p);
    }
  }
  return result;  // budget exhausted; all_alive_decided stays false
}

}  // namespace rrfd::semisync
