// The 2-steps-per-round structure of Section 5, as a reusable component.
//
// "A process's execution occurs in blocks of 2 steps. If a process
// receives a round-r message before sending its own, then it sends no
// further messages [this round], although it continues to receive.
// Otherwise it broadcasts its round-r message, tagging it with the round
// number. [...] At the end of round r, process p_i takes D(i,r) to be the
// set of processes from which it does not receive round-r messages."
//
// The first receive/send of a round acts as an atomic read-modify-write:
// broadcast if and only if the receive returned no round-r message.
// Theorem 5.1: with delivery bound phi = 1 the resulting D(i,r) are equal
// across processes (equation 5) -- the k=1 detector of Theorem 3.1, which
// yields the 2-step consensus algorithm.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/process_set.h"
#include "semisync/network.h"
#include "util/check.h"

namespace rrfd::semisync {

/// Drives the 2-step round structure for one process. The owner supplies,
/// per round, the payload to (conditionally) broadcast, and receives the
/// completed round's view.
class RoundExchange {
 public:
  /// A completed round as seen by this process.
  struct RoundView {
    int round = 0;
    ProcessSet heard;              ///< senders of round-r messages received
    std::map<ProcId, int> values;  ///< their payloads
    ProcessSet fault_set;          ///< D(i,r) = complement of heard

    RoundView(int r, int n) : round(r), heard(n), fault_set(n) {}
  };

  RoundExchange(int n, ProcId self) : n_(n), self_(self) {
    RRFD_REQUIRE(0 < n && n <= core::kMaxProcesses);
    RRFD_REQUIRE(0 <= self && self < n);
  }

  int current_round() const { return round_; }
  ProcId self() const { return self_; }

  /// Processes one simulator step. `payload` is what this process would
  /// broadcast if it turns out to be first in its round; `out` receives
  /// the broadcast decision for this step. Returns the completed round's
  /// view on every second step, nullopt on first steps.
  std::optional<RoundView> on_step(const std::vector<Envelope>& received,
                                   int payload,
                                   std::optional<Broadcast>& out) {
    record(received);
    out.reset();

    if (!mid_round_) {
      // First receive/send of the round: the atomic read-modify-write --
      // broadcast iff no round-r message has been received yet.
      if (heard(round_).senders.empty()) {
        out = Broadcast{round_, payload};
      }
      mid_round_ = true;
      return std::nullopt;
    }

    // Second step: the round is communication-closed here.
    mid_round_ = false;
    RoundView view(round_, n_);
    const Bucket& bucket = heard(round_);
    view.heard = bucket.senders;
    view.values = bucket.values;
    view.fault_set = bucket.senders.complement();
    buckets_.erase(round_);
    ++round_;
    return view;
  }

 private:
  struct Bucket {
    ProcessSet senders;
    std::map<ProcId, int> values;

    explicit Bucket(int n) : senders(n) {}
  };

  Bucket& heard(int round) {
    auto it = buckets_.find(round);
    if (it == buckets_.end()) it = buckets_.emplace(round, Bucket(n_)).first;
    return it->second;
  }

  void record(const std::vector<Envelope>& received) {
    for (const Envelope& env : received) {
      // Rounds are communication-closed: messages for finished rounds are
      // discarded, messages for future rounds buffer until we get there.
      if (env.round < round_) continue;
      Bucket& b = heard(env.round);
      b.senders.add(env.sender);
      b.values[env.sender] = env.payload;
    }
  }

  int n_;
  ProcId self_;
  int round_ = 1;
  bool mid_round_ = false;
  std::map<int, Bucket> buckets_;
};

}  // namespace rrfd::semisync
