// Concrete adversaries for every model in the predicate zoo.
//
// Each adversary's emitted patterns satisfy the corresponding predicate
// *by construction*; tests/core/adversaries_test.cpp re-validates that
// against the declarative predicates for thousands of seeded runs. The
// strength knobs (miss probabilities, fault budgets) control how hard the
// adversary pushes inside its envelope.
#pragma once

#include "core/adversary.h"
#include "util/rng.h"

namespace rrfd::core {

/// Replays a fixed pattern; after it is exhausted, emits all-empty rounds
/// (a benign tail). The raw material for hand-crafted counterexamples.
class ScriptedAdversary final : public Adversary {
 public:
  explicit ScriptedAdversary(FaultPattern pattern);

  int n() const override { return pattern_.n(); }
  std::string name() const override { return "scripted"; }
  RoundFaults next_round() override;
  void next_round_words(std::uint64_t* out) override;
  void reset() override { round_ = 0; }

 private:
  FaultPattern pattern_;
  Round round_ = 0;
};

/// Never announces anyone (fault-free synchrony).
class BenignAdversary final : public Adversary {
 public:
  explicit BenignAdversary(int n);

  int n() const override { return n_; }
  std::string name() const override { return "benign"; }
  RoundFaults next_round() override;
  void next_round_words(std::uint64_t* out) override;
  void reset() override {}

 private:
  int n_;
};

/// Item 1 -- synchronous send-omission, at most f faulty senders.
/// Picks a faulty pool F (|F| <= f) up front; each round each observer
/// misses an independent random subset of F \ {self}.
class OmissionAdversary final : public Adversary {
 public:
  OmissionAdversary(int n, int f, std::uint64_t seed, double miss_prob = 0.5);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

  /// The pool of potentially-faulty senders chosen at construction.
  const ProcessSet& faulty_pool() const { return pool_; }

 private:
  int n_;
  int f_;
  std::uint64_t seed_;
  double miss_prob_;
  ProcessSet pool_;
  Rng rng_;
};

/// Item 2 -- synchronous crash, at most f crashes. Each round, processes
/// from the remaining budget may crash (probability crash_prob each); a
/// crashing process is seen as faulty by a random nonempty-complement
/// subset of observers in its crash round, and by everyone (including
/// itself, which has halted) afterwards.
class CrashAdversary final : public Adversary {
 public:
  CrashAdversary(int n, int f, std::uint64_t seed, double crash_prob = 0.3);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

  /// Processes announced (crashed) so far.
  const ProcessSet& announced() const { return announced_; }

 private:
  int n_;
  int f_;
  std::uint64_t seed_;
  double crash_prob_;
  Rng rng_;
  ProcessSet announced_;
};

/// Item 3 -- asynchronous message passing: each round, each process misses
/// an independent random set of at most f others (self allowed: a process
/// can be "late to its own round").
class AsyncAdversary final : public Adversary {
 public:
  AsyncAdversary(int n, int f, std::uint64_t seed);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

 private:
  int n_;
  int f_;
  std::uint64_t seed_;
  Rng rng_;
};

/// Item 4 -- SWMR shared memory: asynchronous bound f plus "someone heard
/// by all": a random process per round is exempt from all announcements.
class SwmrAdversary final : public Adversary {
 public:
  SwmrAdversary(int n, int f, std::uint64_t seed);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

 private:
  int n_;
  int f_;
  std::uint64_t seed_;
  Rng rng_;
};

/// Item 5 -- Atomic-Snapshot memory: each round is a random *immediate
/// snapshot*: an ordered partition B_1,...,B_m of S with |B_1| >= n - f;
/// a process in B_l sees exactly B_1 U ... U B_l, i.e. its D set is the
/// complement of its prefix. Containment and no-self-suspicion hold by
/// construction.
class SnapshotAdversary final : public Adversary {
 public:
  SnapshotAdversary(int n, int f, std::uint64_t seed);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

 private:
  int n_;
  int f_;
  std::uint64_t seed_;
  Rng rng_;
};

/// Theorem 3.1 -- k-uncertainty: each round, a common base set B is
/// announced to everyone and an uncertainty set U (|U| < k, disjoint from
/// B) is announced to a random subset of observers each.
class KUncertaintyAdversary final : public Adversary {
 public:
  KUncertaintyAdversary(int n, int k, std::uint64_t seed);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

 private:
  int n_;
  int k_;
  std::uint64_t seed_;
  Rng rng_;
};

/// Item 6 -- detector S: like AsyncAdversary with f = n-1 but one process
/// (chosen at construction) is never announced to anyone.
class ImmortalAdversary final : public Adversary {
 public:
  ImmortalAdversary(int n, std::uint64_t seed, ProcId immortal = -1);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override;

  ProcId immortal() const { return immortal_; }

 private:
  int n_;
  std::uint64_t seed_;
  ProcId immortal_;
  bool auto_immortal_;  ///< was immortal_ drawn from the seed? reset()
                        ///< must then replay that draw (see .cpp)
  Rng rng_;
};

/// Equation (5) -- equal announcements: one random proper subset per round,
/// told to everyone.
class EqualAdversary final : public Adversary {
 public:
  EqualAdversary(int n, std::uint64_t seed, double miss_prob = 0.3);

  int n() const override { return n_; }
  std::string name() const override { return "equal"; }
  RoundFaults next_round() override;
  void reset() override;

 private:
  int n_;
  std::uint64_t seed_;
  double miss_prob_;
  Rng rng_;
};

/// The Chaudhuri-Herlihy-Lynch-Tuttle style lower-bound construction used
/// by Corollaries 4.2/4.4: k parallel crash chains, each smuggling one
/// small value forward through a single survivor per round. Over
/// R = floor(f/k) rounds it crashes k processes per round (<= f total) and
/// forces flood-min truncated at R rounds to emit k+1 distinct decisions.
///
/// Layout (requires n >= k*R + k + 1):
///   chain m (0 <= m < k) crashers: c_{m,j} = j*k + m for 0 <= j < R
///   chain m terminal (survivor):   s_m = k*R + m
/// In round j+1, crasher c_{m,j} is missed by everyone except its
/// successor (c_{m,j+1}, or s_m in the last round); crashes are announced
/// to all from the following round, so the pattern is a valid sync-crash(f)
/// pattern.
class ChainAdversary final : public Adversary {
 public:
  ChainAdversary(int n, int f, int k);

  int n() const override { return n_; }
  std::string name() const override;
  RoundFaults next_round() override;
  void reset() override { round_ = 0; }

  int rounds() const { return rounds_; }

  /// The input assignment that realizes the violation: chain-m heads get
  /// value m, everyone else gets k.
  std::vector<int> violating_inputs() const;

  /// Crasher of chain m in (1-based) round j.
  ProcId crasher(int m, Round j) const;

  /// Surviving terminal of chain m.
  ProcId terminal(int m) const { return k_ * rounds_ + m; }

 private:
  int n_;
  int f_;
  int k_;
  int rounds_;  // R = floor(f/k)
  Round round_ = 0;
};

}  // namespace rrfd::core
