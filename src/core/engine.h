// The RRFD round engine: drives emit/receive algorithms against an
// adversary, exactly following the paper's abstract algorithm skeleton:
//
//   r := 1
//   forever do
//     compute messages m_{i,r} for round r
//     emit m_{i,r}
//     (wait until) forall p_j: received m_{j,r} or p_j in D(i,r)
//     r := r + 1
//
// Because rounds are communication-closed, the "wait until" is resolved
// instantaneously: process p_i receives exactly the messages of S \ D(i,r).
// The engine records the fault pattern it was fed so the run can be
// validated against a model predicate afterwards.
#pragma once

#include <concepts>
#include <optional>
#include <vector>

#include "core/adversary.h"
#include "core/delivery.h"
#include "core/fault_pattern.h"
#include "core/predicate.h"

namespace rrfd::core {

/// What a round-based algorithm must provide. One instance per process.
/// absorb() receives a zero-copy DeliveryView over the round's shared
/// emitted buffer (valid only for the duration of the call) plus D(i,r)
/// itself -- announcement sets are first-class algorithm inputs.
template <typename P>
concept RoundProcess = requires(P p, const P cp, Round r,
                                const DeliveryView<typename P::Message>& view,
                                const ProcessSet& d) {
  typename P::Message;
  typename P::Decision;
  { p.emit(r) } -> std::convertible_to<typename P::Message>;
  { p.absorb(r, view, d) };
  { cp.decided() } -> std::convertible_to<bool>;
  { cp.decision() } -> std::convertible_to<typename P::Decision>;
};

/// Engine knobs.
struct EngineOptions {
  /// Hard round limit (guards against non-terminating algorithms).
  Round max_rounds = 1024;
  /// Stop as soon as every process has decided. When false, runs exactly
  /// max_rounds rounds (used by truncated-algorithm experiments).
  bool stop_when_all_decided = true;
};

/// Outcome of a run.
template <typename Decision>
struct RunResult {
  FaultPattern pattern;          ///< the D(i,r) family the adversary chose
  Round rounds = 0;              ///< rounds actually executed
  bool all_decided = false;      ///< did every process commit to an output?
  std::vector<std::optional<Decision>> decisions;  ///< per process

  explicit RunResult(int n) : pattern(n) {}

  /// Distinct decided values among processes in `among` (all when empty).
  std::vector<Decision> distinct_decisions(
      const std::optional<ProcessSet>& among = std::nullopt) const {
    std::vector<Decision> out;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      if (among && !among->contains(static_cast<ProcId>(i))) continue;
      if (!decisions[i]) continue;
      bool seen = false;
      for (const Decision& d : out) seen = seen || d == *decisions[i];
      if (!seen) out.push_back(*decisions[i]);
    }
    return out;
  }
};

/// Runs `processes` (one per ProcId, in order) against `adversary`.
///
/// Every process keeps participating after deciding (as in the paper's
/// "forever do" loop); decisions are commitments, not halts. The caller
/// interprets the decision vector -- e.g. a crash-model experiment ignores
/// announced processes.
template <typename P>
  requires RoundProcess<P>
RunResult<typename P::Decision> run_rounds(std::vector<P>& processes,
                                           Adversary& adversary,
                                           const EngineOptions& options = {}) {
  const int n = adversary.n();
  RRFD_REQUIRE(static_cast<int>(processes.size()) == n);
  RRFD_REQUIRE(options.max_rounds >= 0);

  using Message = typename P::Message;
  RunResult<typename P::Decision> result(n);
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);

  auto all_decided = [&] {
    for (const P& p : processes) {
      if (!p.decided()) return false;
    }
    return true;
  };

  // The emit buffer is allocated once and reused across rounds; absorb()
  // reads it in place through DeliveryViews, so the round loop performs
  // no per-recipient copies and no per-round allocations beyond what the
  // messages themselves need.
  std::vector<Message> emitted;
  emitted.reserve(static_cast<std::size_t>(n));

  for (Round r = 1; r <= options.max_rounds; ++r) {
    if (options.stop_when_all_decided && all_decided()) break;

    // Emit phase: everybody computes its round-r message first (the round
    // is communication-closed, so no message depends on another round-r
    // message).
    emitted.clear();
    for (ProcId i = 0; i < n; ++i) {
      emitted.push_back(processes[static_cast<std::size_t>(i)].emit(r));
    }

    // The RRFD announces; announcements determine delivery: p_i receives
    // m_{j,r} iff p_j not in D(i,r). (S(i,r) = S \ D(i,r); the paper
    // allows overlap of S and D, which delivery-wise is equivalent to the
    // message being dropped, so the engine uses the partition form.)
    result.pattern.append(adversary.next_round());
    const RoundFaults& faults = result.pattern.round(r);

    for (ProcId i = 0; i < n; ++i) {
      const ProcessSet& d = faults[static_cast<std::size_t>(i)];
      processes[static_cast<std::size_t>(i)].absorb(
          r, DeliveryView<Message>(emitted.data(), d), d);
    }
    result.rounds = r;
  }

  for (ProcId i = 0; i < n; ++i) {
    const P& p = processes[static_cast<std::size_t>(i)];
    if (p.decided()) result.decisions[static_cast<std::size_t>(i)] = p.decision();
  }
  result.all_decided = all_decided();
  return result;
}

}  // namespace rrfd::core
