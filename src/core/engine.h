// The RRFD round engine: drives emit/receive algorithms against an
// adversary, exactly following the paper's abstract algorithm skeleton:
//
//   r := 1
//   forever do
//     compute messages m_{i,r} for round r
//     emit m_{i,r}
//     (wait until) forall p_j: received m_{j,r} or p_j in D(i,r)
//     r := r + 1
//
// Because rounds are communication-closed, the "wait until" is resolved
// instantaneously: process p_i receives exactly the messages of S \ D(i,r).
// The engine records the fault pattern it was fed so the run can be
// validated against a model predicate afterwards.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/adversary.h"
#include "core/delivery.h"
#include "core/fault_pattern.h"
#include "core/predicate.h"
#include "core/words.h"
#include "trace/trace.h"

namespace rrfd::core {

/// What a round-based algorithm must provide. One instance per process.
/// absorb() receives a zero-copy DeliveryView over the round's shared
/// emitted buffer (valid only for the duration of the call) plus D(i,r)
/// itself -- announcement sets are first-class algorithm inputs.
template <typename P>
concept RoundProcess = requires(P p, const P cp, Round r,
                                const DeliveryView<typename P::Message>& view,
                                const ProcessSet& d) {
  typename P::Message;
  typename P::Decision;
  { p.emit(r) } -> std::convertible_to<typename P::Message>;
  { p.absorb(r, view, d) };
  { cp.decided() } -> std::convertible_to<bool>;
  { cp.decision() } -> std::convertible_to<typename P::Decision>;
};

/// Optional batch-absorb hook: an algorithm may provide a static
///
///   absorb_round(std::vector<P>& processes, Round r,
///                const Message* emitted, const std::uint64_t* delivered)
///
/// that advances *every* process for one round, where delivered[i] is the
/// word of S \ D(i,r). The engine's word path calls it instead of n
/// per-process absorb() calls, letting the algorithm replace its O(n^2)
/// per-recipient scans with whole-round word passes (see
/// agreement::FloodMin::absorb_round). It must be observably equivalent
/// to the per-process loop -- the equivalence suites enforce that.
template <typename P>
concept WordAbsorbProcess =
    RoundProcess<P> &&
    requires(std::vector<P>& ps, Round r, const typename P::Message* emitted,
             const std::uint64_t* delivered) {
      { P::absorb_round(ps, r, emitted, delivered) };
    };

/// Engine knobs.
struct EngineOptions {
  /// Hard round limit (guards against non-terminating algorithms).
  Round max_rounds = 1024;
  /// Stop as soon as every process has decided. When false, runs exactly
  /// max_rounds rounds (used by truncated-algorithm experiments).
  bool stop_when_all_decided = true;
  /// Round-loop implementation (see EnginePath).
  EnginePath path = EnginePath::kWord;
};

/// Outcome of a run.
template <typename Decision>
struct RunResult {
  FaultPattern pattern;          ///< the D(i,r) family the adversary chose
  Round rounds = 0;              ///< rounds actually executed
  bool all_decided = false;      ///< did every process commit to an output?
  std::vector<std::optional<Decision>> decisions;  ///< per process

  explicit RunResult(int n) : pattern(n) {}

  /// Distinct decided values among processes in `among` (all when empty),
  /// in first-seen (lowest deciding ProcId) order. Sorted-dedup, O(k log k)
  /// over the decided values when Decision is ordered; falls back to the
  /// quadratic scan for ==-only Decision types.
  std::vector<Decision> distinct_decisions(
      const std::optional<ProcessSet>& among = std::nullopt) const {
    std::vector<Decision> candidates;
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      if (among && !among->contains(static_cast<ProcId>(i))) continue;
      if (!decisions[i]) continue;
      candidates.push_back(*decisions[i]);
    }
    if constexpr (requires(const Decision& x, const Decision& y) {
                    { x < y } -> std::convertible_to<bool>;
                  }) {
      // Tag with first-seen rank, cluster equal values (stable, so the
      // earliest occurrence leads its cluster), dedup, restore rank order.
      std::vector<std::pair<Decision, std::size_t>> tagged;
      tagged.reserve(candidates.size());
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        tagged.emplace_back(candidates[k], k);
      }
      std::stable_sort(tagged.begin(), tagged.end(),
                       [](const auto& x, const auto& y) {
                         return x.first < y.first;
                       });
      tagged.erase(std::unique(tagged.begin(), tagged.end(),
                               [](const auto& x, const auto& y) {
                                 return x.first == y.first;
                               }),
                   tagged.end());
      std::sort(tagged.begin(), tagged.end(),
                [](const auto& x, const auto& y) {
                  return x.second < y.second;
                });
      std::vector<Decision> out;
      out.reserve(tagged.size());
      for (auto& entry : tagged) out.push_back(std::move(entry.first));
      return out;
    } else {
      std::vector<Decision> out;
      for (const Decision& candidate : candidates) {
        bool seen = false;
        for (const Decision& d : out) seen = seen || d == candidate;
        if (!seen) out.push_back(candidate);
      }
      return out;
    }
  }
};

namespace detail {

/// The round loop, specialized per path at compile time so neither pays
/// for the other's code (the dead branches cost measurable register
/// pressure when left to a runtime bool).
template <bool kWordPath, typename P>
  requires RoundProcess<P>
RunResult<typename P::Decision> run_rounds_impl(
    std::vector<P>& processes, Adversary& adversary,
    const EngineOptions& options) {
  const int n = adversary.n();
  RRFD_REQUIRE(static_cast<int>(processes.size()) == n);
  RRFD_REQUIRE(options.max_rounds >= 0);

  using Message = typename P::Message;
  using Decision = typename P::Decision;
  RunResult<Decision> result(n);
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);

  auto all_decided = [&] {
    for (const P& p : processes) {
      if (!p.decided()) return false;
    }
    return true;
  };

  // Flight recorder: sampled once per run; the untraced hot path costs one
  // bool test per event site. Payload/decision values are recorded only
  // when their types are integral (the trace event is a fixed-size word).
  const bool tracing = trace::Tracer::on();
  constexpr auto kSub = trace::Substrate::kEngine;
  auto encode = [](const auto& value) -> std::pair<std::uint64_t, bool> {
    using V = std::decay_t<decltype(value)>;
    if constexpr (std::is_integral_v<V>) {
      return {static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(value)), true};
    } else {
      return {0, false};
    }
  };
  std::vector<bool> decided_before;
  auto trace_new_decisions = [&](Round r) {
    for (ProcId i = 0; i < n; ++i) {
      const P& p = processes[static_cast<std::size_t>(i)];
      if (decided_before[static_cast<std::size_t>(i)] || !p.decided()) {
        continue;
      }
      decided_before[static_cast<std::size_t>(i)] = true;
      const auto [value, valid] = encode(p.decision());
      trace::record(trace::EventKind::kDecide, kSub, i, r, value,
                    valid ? 1 : 0);
    }
  };
  if (tracing) {
    trace::record(trace::EventKind::kRunBegin, kSub, n, 0,
                  static_cast<std::uint64_t>(options.max_rounds),
                  options.stop_when_all_decided ? 1 : 0);
    decided_before.assign(static_cast<std::size_t>(n), false);
    trace_new_decisions(0);  // decisions committed before round 1
  }

  // The emit buffer is allocated once and reused across rounds; absorb()
  // reads it in place through DeliveryViews, so the round loop performs
  // no per-recipient copies and no per-round allocations beyond what the
  // messages themselves need.
  std::vector<Message> emitted;
  emitted.reserve(static_cast<std::size_t>(n));

  // Word path state: the announcement words land in a struct-of-arrays
  // arena (converted to the FaultPattern once, after the loop) and the
  // delivered masks S \ D(i,r) live in one reused n-word row, so a round
  // costs n word stores instead of a RoundFaults allocation.
  const std::uint64_t full = full_mask(n);
  MaskRounds arena(n);
  std::vector<std::uint64_t> delivered;
  if constexpr (kWordPath) {
    arena.reserve_rounds(std::min(options.max_rounds, Round{4096}));
    delivered.assign(static_cast<std::size_t>(n), 0);
  }

  for (Round r = 1; r <= options.max_rounds; ++r) {
    if (options.stop_when_all_decided && all_decided()) break;

    if (tracing) trace::record(trace::EventKind::kRoundStart, kSub, -1, r);

    // Emit phase: everybody computes its round-r message first (the round
    // is communication-closed, so no message depends on another round-r
    // message).
    emitted.clear();
    for (ProcId i = 0; i < n; ++i) {
      emitted.push_back(processes[static_cast<std::size_t>(i)].emit(r));
    }
    // Trace sites live in their own loops so the untraced hot path keeps
    // its per-process loops branch-free (one `tracing` test per round).
    if (tracing) {
      for (ProcId i = 0; i < n; ++i) {
        const auto [value, valid] =
            encode(emitted[static_cast<std::size_t>(i)]);
        trace::record(trace::EventKind::kEmit, kSub, i, r, value,
                      valid ? 1 : 0);
      }
    }

    // The RRFD announces; announcements determine delivery: p_i receives
    // m_{j,r} iff p_j not in D(i,r). (S(i,r) = S \ D(i,r); the paper
    // allows overlap of S and D, which delivery-wise is equivalent to the
    // message being dropped, so the engine uses the partition form.)
    if constexpr (kWordPath) {
      std::uint64_t* d = arena.push_round();
      adversary.next_round_words(d);
      for (ProcId i = 0; i < n; ++i) {
        const std::uint64_t di = d[static_cast<std::size_t>(i)];
        RRFD_REQUIRE_MSG((di & ~full) == 0,
                         "adversary emitted a D(i,r) word outside {0..n-1}");
        RRFD_REQUIRE_MSG(
            di != full,
            "D(i,r) = S is forbidden: not all processes can be late");
        delivered[static_cast<std::size_t>(i)] = full & ~di;
      }
      if (tracing) {
        for (ProcId i = 0; i < n; ++i) {
          trace::record(trace::EventKind::kAnnounce, kSub, i, r,
                        d[static_cast<std::size_t>(i)]);
          trace::record(trace::EventKind::kDeliver, kSub, i, r,
                        delivered[static_cast<std::size_t>(i)]);
        }
      }
      if constexpr (WordAbsorbProcess<P>) {
        P::absorb_round(processes, r, emitted.data(), delivered.data());
      } else {
        for (ProcId i = 0; i < n; ++i) {
          const ProcessSet di =
              ProcessSet::from_bits(n, d[static_cast<std::size_t>(i)]);
          const DeliveryView<Message> view(emitted.data(), di);
          processes[static_cast<std::size_t>(i)].absorb(r, view, di);
        }
      }
    } else {
      result.pattern.append(adversary.next_round());
      const RoundFaults& faults = result.pattern.round(r);

      if (tracing) {
        for (ProcId i = 0; i < n; ++i) {
          const ProcessSet& d = faults[static_cast<std::size_t>(i)];
          trace::record(trace::EventKind::kAnnounce, kSub, i, r, d.bits());
          // Engine deliveries are one view per recipient, not n point-to-
          // point copies: a = the delivered-senders mask S \ D(i,r).
          trace::record(trace::EventKind::kDeliver, kSub, i, r,
                        d.complement().bits());
        }
      }
      for (ProcId i = 0; i < n; ++i) {
        const ProcessSet& d = faults[static_cast<std::size_t>(i)];
        const DeliveryView<Message> view(emitted.data(), d);
        processes[static_cast<std::size_t>(i)].absorb(r, view, d);
      }
    }
    if (tracing) {
      trace_new_decisions(r);
      trace::record(trace::EventKind::kRoundEnd, kSub, -1, r);
    }
    result.rounds = r;
  }
  // The word path records announcements in the arena only; materialize
  // the FaultPattern (identical to what the set path appends round by
  // round) once, after the loop.
  if constexpr (kWordPath) result.pattern = arena.to_fault_pattern();

  std::uint64_t decided_mask = 0;
  for (ProcId i = 0; i < n; ++i) {
    const P& p = processes[static_cast<std::size_t>(i)];
    if (p.decided()) {
      result.decisions[static_cast<std::size_t>(i)] = p.decision();
      decided_mask |= std::uint64_t{1} << i;
    }
  }
  result.all_decided = all_decided();
  if (tracing) {
    trace::record(trace::EventKind::kRunEnd, kSub, -1, result.rounds,
                  result.all_decided ? 1 : 0, decided_mask);
  }
  return result;
}

}  // namespace detail

/// Runs `processes` (one per ProcId, in order) against `adversary`.
///
/// Every process keeps participating after deciding (as in the paper's
/// "forever do" loop); decisions are commitments, not halts. The caller
/// interprets the decision vector -- e.g. a crash-model experiment ignores
/// announced processes.
template <typename P>
  requires RoundProcess<P>
RunResult<typename P::Decision> run_rounds(std::vector<P>& processes,
                                           Adversary& adversary,
                                           const EngineOptions& options = {}) {
  return options.path == EnginePath::kWord
             ? detail::run_rounds_impl<true>(processes, adversary, options)
             : detail::run_rounds_impl<false>(processes, adversary, options);
}

}  // namespace rrfd::core
