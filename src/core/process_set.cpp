#include "core/process_set.h"

#include <ostream>
#include <sstream>

namespace rrfd::core {

std::vector<ProcId> ProcessSet::members() const {
  std::vector<ProcId> out;
  out.reserve(static_cast<std::size_t>(size()));
  std::uint64_t b = bits_;
  while (b != 0) {
    out.push_back(std::countr_zero(b));
    b &= b - 1;  // clear lowest set bit
  }
  return out;
}

std::string ProcessSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (ProcId p : members()) {
    if (!first) os << ',';
    os << p;
    first = false;
  }
  os << '}';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ProcessSet& s) {
  return os << s.to_string();
}

}  // namespace rrfd::core
