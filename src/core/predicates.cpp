#include "core/predicates.h"

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/words.h"
#include "util/str.h"

namespace rrfd::core {
namespace {

// ---------------------------------------------------------------------------
// Incremental evaluators
//
// Each evaluator keeps a stack of per-depth summaries so pop_round() is an
// O(1) truncation; push_round() is O(n) set algebra. Verdicts are exact at
// every depth: kViolatedForever iff the pushed prefix violates the
// predicate (which, for these zoo predicates, all extensions then do too),
// kSatisfiedForever only when no legal continuation can violate it.
//
// Every evaluator implements the check twice: once over ProcessSets
// (push_round / violates) and once over raw uint64_t words
// (push_round_words / violates_words). The word cores are written from
// the predicate's definition, NOT by delegating to the set code, so the
// differential suites hold two independent derivations of each model
// against each other.
// ---------------------------------------------------------------------------

/// Base for constraints that are a conjunction of independent per-round
/// checks: the only state is "has any pushed round violated".
class PerRoundEvaluator : public StepEvaluator {
 public:
  void begin(int n, Round /*total_rounds*/) override {
    n_ = n;
    viol_.assign(1, 0);
  }

  StepVerdict push_round(const RoundFaults& round) override {
    const bool violated = viol_.back() != 0 || violates(round);
    viol_.push_back(violated ? 1 : 0);
    if (violated) return StepVerdict::kViolatedForever;
    return vacuous() ? StepVerdict::kSatisfiedForever
                     : StepVerdict::kSatisfiedSoFar;
  }

  StepVerdict push_round_words(const std::uint64_t* d,
                               [[maybe_unused]] int n) override {
    RRFD_ASSERT(n == n_);
    const bool violated = viol_.back() != 0 || violates_words(d);
    viol_.push_back(violated ? 1 : 0);
    if (violated) return StepVerdict::kViolatedForever;
    return vacuous() ? StepVerdict::kSatisfiedForever
                     : StepVerdict::kSatisfiedSoFar;
  }

  void pop_round() override { viol_.pop_back(); }

  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // The only state is the sticky violated bit; vacuity is a constant
    // of (parameters, n) and needs no bytes.
    statekey::append_u8(out, viol_.back() != 0 ? 0xFF : 0x00);
    return true;
  }

 protected:
  virtual bool violates(const RoundFaults& round) const = 0;

  /// Word core of the same check: d[i] = D(i,r).bits(), n_ words.
  virtual bool violates_words(const std::uint64_t* d) const = 0;

  /// True when no legal round (every D a proper subset of S) can violate
  /// the constraint; the verdict is then kSatisfiedForever.
  virtual bool vacuous() const { return false; }

  int n_ = 0;

 private:
  std::vector<char> viol_;
};

class NoSelfSuspicionEvaluator final : public StepEvaluator {
 public:
  explicit NoSelfSuspicionEvaluator(bool exempt) : exempt_(exempt) {}

  void begin(int n, Round /*total_rounds*/) override {
    n_ = n;
    states_.clear();
    states_.push_back({ProcessSet(n), false});
  }

  StepVerdict push_round(const RoundFaults& round) override {
    const State& prev = states_.back();
    bool violated = prev.violated;
    if (!violated) {
      for (ProcId i = 0; i < n_; ++i) {
        if (round[static_cast<std::size_t>(i)].contains(i) &&
            !(exempt_ && prev.announced.contains(i))) {
          violated = true;
          break;
        }
      }
    }
    ProcessSet announced = prev.announced;
    for (const ProcessSet& d : round) announced |= d;
    const bool exhausted = exempt_ && announced.full();
    states_.push_back({announced, violated});
    if (violated) return StepVerdict::kViolatedForever;
    // Once everybody has been announced, every future self-suspicion is
    // exempt: the predicate can no longer be violated.
    return exhausted ? StepVerdict::kSatisfiedForever
                     : StepVerdict::kSatisfiedSoFar;
  }

  StepVerdict push_round_words(const std::uint64_t* d, int n) override {
    RRFD_ASSERT(n == n_);
    const State& prev = states_.back();
    // diag bit i <=> p_i in D(i,r); a violation is a diagonal bit outside
    // the exemption mask (empty when !exempt_).
    std::uint64_t diag = 0;
    std::uint64_t u = 0;
    for (int i = 0; i < n; ++i) {
      diag |= (d[i] >> i & 1) << i;
      u |= d[i];
    }
    const std::uint64_t exempt_mask = exempt_ ? prev.announced.bits() : 0;
    const bool violated = prev.violated || (diag & ~exempt_mask) != 0;
    const std::uint64_t announced = prev.announced.bits() | u;
    const bool exhausted = exempt_ && announced == full_mask(n);
    states_.push_back({ProcessSet::from_bits(n, announced), violated});
    if (violated) return StepVerdict::kViolatedForever;
    return exhausted ? StepVerdict::kSatisfiedForever
                     : StepVerdict::kSatisfiedSoFar;
  }

  void pop_round() override { states_.pop_back(); }

  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // Violation is sticky, so every violated state collapses to one tag.
    // The announced set only matters under the exemption; without it the
    // future depends on nothing but the violated bit.
    const State& s = states_.back();
    if (s.violated) {
      statekey::append_u8(out, 0xFF);
    } else {
      statekey::append_u8(out, 0x00);
      if (exempt_) statekey::append_u64(out, s.announced.bits());
    }
    return true;
  }

 private:
  struct State {
    ProcessSet announced;  ///< cumulative union of the pushed rounds
    bool violated;
  };
  bool exempt_;
  int n_ = 0;
  std::vector<State> states_;
};

class CumulativeFaultBoundEvaluator final : public StepEvaluator {
 public:
  explicit CumulativeFaultBoundEvaluator(int f) : f_(f) {}

  void begin(int n, Round /*total_rounds*/) override {
    n_ = n;
    cums_.assign(1, ProcessSet(n));
  }

  StepVerdict push_round(const RoundFaults& round) override {
    ProcessSet cum = cums_.back();
    for (const ProcessSet& d : round) cum |= d;
    cums_.push_back(cum);
    if (cum.size() > f_) return StepVerdict::kViolatedForever;
    // With f >= n the bound can never be exceeded.
    return f_ >= n_ ? StepVerdict::kSatisfiedForever
                    : StepVerdict::kSatisfiedSoFar;
  }

  StepVerdict push_round_words(const std::uint64_t* d, int n) override {
    RRFD_ASSERT(n == n_);
    std::uint64_t cum = cums_.back().bits();
    for (int i = 0; i < n; ++i) cum |= d[i];
    cums_.push_back(ProcessSet::from_bits(n, cum));
    if (std::popcount(cum) > f_) return StepVerdict::kViolatedForever;
    return f_ >= n_ ? StepVerdict::kSatisfiedForever
                    : StepVerdict::kSatisfiedSoFar;
  }

  void pop_round() override { cums_.pop_back(); }

  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // The cumulative union only grows along a suffix, so an over-budget
    // union is absorbing and collapses to one tag.
    const ProcessSet& cum = cums_.back();
    if (cum.size() > f_) {
      statekey::append_u8(out, 0xFF);
    } else {
      statekey::append_u8(out, 0x00);
      statekey::append_u64(out, cum.bits());
    }
    return true;
  }

 private:
  int f_;
  int n_ = 0;
  std::vector<ProcessSet> cums_;
};

class CrashMonotonicityEvaluator final : public StepEvaluator {
 public:
  void begin(int n, Round /*total_rounds*/) override {
    n_ = n;
    states_.clear();
    // Empty sentinel union: round 1 has no predecessor, and the empty set
    // is a subset of everything, so the first check is vacuous.
    states_.push_back({ProcessSet(n), false});
  }

  StepVerdict push_round(const RoundFaults& round) override {
    const State& prev = states_.back();
    bool violated = prev.violated;
    if (!violated) {
      for (const ProcessSet& d : round) {
        if (!prev.round_union.subset_of(d)) {
          violated = true;
          break;
        }
      }
    }
    ProcessSet u(n_);
    for (const ProcessSet& d : round) u |= d;
    states_.push_back({u, violated});
    return violated ? StepVerdict::kViolatedForever
                    : StepVerdict::kSatisfiedSoFar;
  }

  StepVerdict push_round_words(const std::uint64_t* d, int n) override {
    RRFD_ASSERT(n == n_);
    const State& prev = states_.back();
    const std::uint64_t must = prev.round_union.bits();
    std::uint64_t missing = 0;  // announced-last-round bits absent from some D
    std::uint64_t u = 0;
    for (int i = 0; i < n; ++i) {
      missing |= must & ~d[i];
      u |= d[i];
    }
    const bool violated = prev.violated || missing != 0;
    states_.push_back({ProcessSet::from_bits(n, u), violated});
    return violated ? StepVerdict::kViolatedForever
                    : StepVerdict::kSatisfiedSoFar;
  }

  void pop_round() override { states_.pop_back(); }

  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    const State& s = states_.back();
    if (s.violated) {
      statekey::append_u8(out, 0xFF);  // sticky
    } else {
      statekey::append_u8(out, 0x00);
      statekey::append_u64(out, s.round_union.bits());
    }
    return true;
  }

 private:
  struct State {
    ProcessSet round_union;  ///< union of the most recently pushed round
    bool violated;
  };
  int n_ = 0;
  std::vector<State> states_;
};

class PerRoundFaultBoundEvaluator final : public PerRoundEvaluator {
 public:
  explicit PerRoundFaultBoundEvaluator(int f) : f_(f) {}

 protected:
  bool violates(const RoundFaults& round) const override {
    for (const ProcessSet& d : round) {
      if (d.size() > f_) return true;
    }
    return false;
  }
  bool violates_words(const std::uint64_t* d) const override {
    for (int i = 0; i < n_; ++i) {
      if (std::popcount(d[i]) > f_) return true;
    }
    return false;
  }
  // |D| <= n-1 always (D = S is structurally excluded).
  bool vacuous() const override { return f_ >= n_ - 1; }

 private:
  int f_;
};

class SomeoneHeardByAllEvaluator final : public PerRoundEvaluator {
 protected:
  bool violates(const RoundFaults& round) const override {
    return union_over(round).size() >= n_;
  }
  bool violates_words(const std::uint64_t* d) const override {
    std::uint64_t u = 0;
    for (int i = 0; i < n_; ++i) u |= d[i];
    return u == full_mask(n_);
  }
  bool vacuous() const override { return n_ == 1; }
};

class NoMutualMissEvaluator final : public PerRoundEvaluator {
 protected:
  bool violates(const RoundFaults& round) const override {
    for (ProcId i = 0; i < n_; ++i) {
      for (ProcId j : round[static_cast<std::size_t>(i)]) {
        if (round[static_cast<std::size_t>(j)].contains(i)) return true;
      }
    }
    return false;
  }
  bool violates_words(const std::uint64_t* d) const override {
    // Bit-scan row i and test the transposed bit: a mutual miss is a
    // symmetric pair (bit j of d[i], bit i of d[j]) both set.
    for (int i = 0; i < n_; ++i) {
      for (std::uint64_t s = d[i]; s != 0; s &= s - 1) {
        const int j = std::countr_zero(s);
        if ((d[j] >> i & 1) != 0) return true;
      }
    }
    return false;
  }
  bool vacuous() const override { return n_ == 1; }
};

class ContainmentChainEvaluator final : public PerRoundEvaluator {
 protected:
  bool violates(const RoundFaults& round) const override {
    for (ProcId i = 0; i < n_; ++i) {
      const ProcessSet& di = round[static_cast<std::size_t>(i)];
      for (ProcId j = i + 1; j < n_; ++j) {
        const ProcessSet& dj = round[static_cast<std::size_t>(j)];
        if (!di.subset_of(dj) && !dj.subset_of(di)) return true;
      }
    }
    return false;
  }
  bool violates_words(const std::uint64_t* d) const override {
    // a \subseteq b  <=>  (a & ~b) == 0; a chain is pairwise one-way
    // containment.
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        if ((d[i] & ~d[j]) != 0 && (d[j] & ~d[i]) != 0) return true;
      }
    }
    return false;
  }
  bool vacuous() const override { return n_ == 1; }
};

class ImmortalProcessEvaluator final : public StepEvaluator {
 public:
  void begin(int n, Round /*total_rounds*/) override {
    n_ = n;
    cums_.assign(1, ProcessSet(n));
  }

  StepVerdict push_round(const RoundFaults& round) override {
    ProcessSet cum = cums_.back();
    for (const ProcessSet& d : round) cum |= d;
    cums_.push_back(cum);
    return cum.size() >= n_ ? StepVerdict::kViolatedForever
                            : StepVerdict::kSatisfiedSoFar;
  }

  StepVerdict push_round_words(const std::uint64_t* d, int n) override {
    RRFD_ASSERT(n == n_);
    std::uint64_t cum = cums_.back().bits();
    for (int i = 0; i < n; ++i) cum |= d[i];
    cums_.push_back(ProcessSet::from_bits(n, cum));
    return cum == full_mask(n) ? StepVerdict::kViolatedForever
                               : StepVerdict::kSatisfiedSoFar;
  }

  void pop_round() override { cums_.pop_back(); }

  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    const ProcessSet& cum = cums_.back();
    if (cum.size() >= n_) {
      statekey::append_u8(out, 0xFF);  // everyone announced: sticky
    } else {
      statekey::append_u8(out, 0x00);
      statekey::append_u64(out, cum.bits());
    }
    return true;
  }

 private:
  int n_ = 0;
  std::vector<ProcessSet> cums_;
};

class KUncertaintyEvaluator final : public PerRoundEvaluator {
 public:
  explicit KUncertaintyEvaluator(int k) : k_(k) {}

 protected:
  bool violates(const RoundFaults& round) const override {
    const ProcessSet disagreement =
        union_over(round) - intersection_over(round);
    return disagreement.size() >= k_;
  }
  bool violates_words(const std::uint64_t* d) const override {
    // Disagreement = OR \ AND of the round's announcements.
    std::uint64_t any = 0;
    std::uint64_t every = full_mask(n_);
    for (int i = 0; i < n_; ++i) {
      any |= d[i];
      every &= d[i];
    }
    return std::popcount(any & ~every) >= k_;
  }
  // The disagreement set has at most n members.
  bool vacuous() const override { return k_ > n_; }

 private:
  int k_;
};

class EqualAnnouncementsEvaluator final : public PerRoundEvaluator {
 protected:
  bool violates(const RoundFaults& round) const override {
    for (ProcId i = 1; i < n_; ++i) {
      if (round[static_cast<std::size_t>(i)] != round[0]) return true;
    }
    return false;
  }
  bool violates_words(const std::uint64_t* d) const override {
    // XOR against the first row folds all inequality into one word.
    std::uint64_t diff = 0;
    for (int i = 1; i < n_; ++i) diff |= d[i] ^ d[0];
    return diff != 0;
  }
  bool vacuous() const override { return n_ == 1; }
};

bool quorum_round_ok(const RoundFaults& round, int t, int f) {
  // The minimal witness Q is exactly the set of processes whose D exceeds
  // f; every member must still respect the bound t.
  int oversized = 0;
  for (const ProcessSet& d : round) {
    if (d.size() > t) return false;
    if (d.size() > f) ++oversized;
  }
  return oversized <= t;
}

class QuorumSkewEvaluator final : public PerRoundEvaluator {
 public:
  QuorumSkewEvaluator(int t, int f) : t_(t), f_(f) {}

 protected:
  bool violates(const RoundFaults& round) const override {
    return !quorum_round_ok(round, t_, f_);
  }
  bool violates_words(const std::uint64_t* d) const override {
    // Same minimal-witness argument as quorum_round_ok, over popcounts.
    int oversized = 0;
    for (int i = 0; i < n_; ++i) {
      const int sz = std::popcount(d[i]);
      if (sz > t_) return true;
      if (sz > f_) ++oversized;
    }
    return oversized > t_;
  }
  // With f >= n-1 nobody is ever oversized (and t > f >= |D|).
  bool vacuous() const override { return f_ >= n_ - 1; }

 private:
  int t_;
  int f_;
};

class NeverFaultyEvaluator final : public PerRoundEvaluator {
 protected:
  bool violates(const RoundFaults& round) const override {
    for (const ProcessSet& d : round) {
      if (!d.empty()) return true;
    }
    return false;
  }
  bool violates_words(const std::uint64_t* d) const override {
    std::uint64_t u = 0;
    for (int i = 0; i < n_; ++i) u |= d[i];
    return u != 0;
  }
  // n = 1: the only proper subset of S is the empty set.
  bool vacuous() const override { return n_ == 1; }
};

}  // namespace

// --------------------------------------------------------------------------
// NoSelfSuspicion
// --------------------------------------------------------------------------

std::string NoSelfSuspicion::name() const {
  return exempt_announced_ ? "no-self-suspicion(exempt-announced)"
                           : "no-self-suspicion";
}

std::string NoSelfSuspicion::description() const {
  return "forall i,r: p_i not in D(i,r)" +
         std::string(exempt_announced_
                         ? " unless p_i was announced in an earlier round"
                         : "");
}

bool NoSelfSuspicion::holds(const FaultPattern& pattern) const {
  ProcessSet announced(pattern.n());
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      if (pattern.d(i, r).contains(i) &&
          !(exempt_announced_ && announced.contains(i))) {
        return false;
      }
    }
    announced |= pattern.round_union(r);
  }
  return true;
}

std::unique_ptr<StepEvaluator> NoSelfSuspicion::evaluator() const {
  return std::make_unique<NoSelfSuspicionEvaluator>(exempt_announced_);
}

// --------------------------------------------------------------------------
// CumulativeFaultBound
// --------------------------------------------------------------------------

CumulativeFaultBound::CumulativeFaultBound(int f) : f_(f) {
  RRFD_REQUIRE(f >= 0);
}

std::string CumulativeFaultBound::name() const {
  return cat("cumulative-fault-bound(f=", f_, ")");
}

std::string CumulativeFaultBound::description() const {
  return cat("|U_{r,i} D(i,r)| <= ", f_,
             " -- at most f distinct processes ever announced");
}

bool CumulativeFaultBound::holds(const FaultPattern& pattern) const {
  return pattern.cumulative_union().size() <= f_;
}

std::unique_ptr<StepEvaluator> CumulativeFaultBound::evaluator() const {
  return std::make_unique<CumulativeFaultBoundEvaluator>(f_);
}

// --------------------------------------------------------------------------
// CrashMonotonicity
// --------------------------------------------------------------------------

std::string CrashMonotonicity::name() const { return "crash-monotonicity"; }

std::string CrashMonotonicity::description() const {
  return "forall r,k: U_i D(i,r) subseteq D(k,r+1) -- announcements are "
         "permanent and universal from the next round";
}

bool CrashMonotonicity::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r < pattern.rounds(); ++r) {
    const ProcessSet announced = pattern.round_union(r);
    for (ProcId k = 0; k < pattern.n(); ++k) {
      if (!announced.subset_of(pattern.d(k, r + 1))) return false;
    }
  }
  return true;
}

std::unique_ptr<StepEvaluator> CrashMonotonicity::evaluator() const {
  return std::make_unique<CrashMonotonicityEvaluator>();
}

// --------------------------------------------------------------------------
// PerRoundFaultBound
// --------------------------------------------------------------------------

PerRoundFaultBound::PerRoundFaultBound(int f) : f_(f) {
  RRFD_REQUIRE(f >= 0);
}

std::string PerRoundFaultBound::name() const {
  return cat("per-round-fault-bound(f=", f_, ")");
}

std::string PerRoundFaultBound::description() const {
  return cat("forall i,r: |D(i,r)| <= ", f_,
             " -- each process misses at most f others per round");
}

bool PerRoundFaultBound::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      if (pattern.d(i, r).size() > f_) return false;
    }
  }
  return true;
}

std::unique_ptr<StepEvaluator> PerRoundFaultBound::evaluator() const {
  return std::make_unique<PerRoundFaultBoundEvaluator>(f_);
}

// --------------------------------------------------------------------------
// SomeoneHeardByAll
// --------------------------------------------------------------------------

std::string SomeoneHeardByAll::name() const { return "someone-heard-by-all"; }

std::string SomeoneHeardByAll::description() const {
  return "forall r: |U_i D(i,r)| < n -- each round some process is "
         "announced to nobody";
}

bool SomeoneHeardByAll::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    if (pattern.round_union(r).size() >= pattern.n()) return false;
  }
  return true;
}

std::unique_ptr<StepEvaluator> SomeoneHeardByAll::evaluator() const {
  return std::make_unique<SomeoneHeardByAllEvaluator>();
}

// --------------------------------------------------------------------------
// NoMutualMiss
// --------------------------------------------------------------------------

std::string NoMutualMiss::name() const { return "no-mutual-miss"; }

std::string NoMutualMiss::description() const {
  return "forall r,i,j: p_j in D(i,r) => p_i not in D(j,r)";
}

bool NoMutualMiss::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      for (ProcId j : pattern.d(i, r).members()) {
        if (pattern.d(j, r).contains(i)) return false;
      }
    }
  }
  return true;
}

std::unique_ptr<StepEvaluator> NoMutualMiss::evaluator() const {
  return std::make_unique<NoMutualMissEvaluator>();
}

// --------------------------------------------------------------------------
// ContainmentChain
// --------------------------------------------------------------------------

std::string ContainmentChain::name() const { return "containment-chain"; }

std::string ContainmentChain::description() const {
  return "forall r,i,j: D(i,r) subseteq D(j,r) or D(j,r) subseteq D(i,r)";
}

bool ContainmentChain::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    const RoundFaults& round = pattern.round(r);
    for (ProcId i = 0; i < pattern.n(); ++i) {
      const ProcessSet& di = round[static_cast<std::size_t>(i)];
      for (ProcId j = i + 1; j < pattern.n(); ++j) {
        const ProcessSet& dj = round[static_cast<std::size_t>(j)];
        if (!di.subset_of(dj) && !dj.subset_of(di)) return false;
      }
    }
  }
  return true;
}

std::unique_ptr<StepEvaluator> ContainmentChain::evaluator() const {
  return std::make_unique<ContainmentChainEvaluator>();
}

// --------------------------------------------------------------------------
// ImmortalProcess
// --------------------------------------------------------------------------

std::string ImmortalProcess::name() const { return "immortal-process"; }

std::string ImmortalProcess::description() const {
  return "exists p_j never in any D(i,r) -- weak accuracy of detector S";
}

bool ImmortalProcess::holds(const FaultPattern& pattern) const {
  return pattern.cumulative_union().size() < pattern.n();
}

std::unique_ptr<StepEvaluator> ImmortalProcess::evaluator() const {
  return std::make_unique<ImmortalProcessEvaluator>();
}

// --------------------------------------------------------------------------
// KUncertainty
// --------------------------------------------------------------------------

KUncertainty::KUncertainty(int k) : k_(k) { RRFD_REQUIRE(k >= 1); }

std::string KUncertainty::name() const {
  return cat("k-uncertainty(k=", k_, ")");
}

std::string KUncertainty::description() const {
  return cat("forall r: |U_i D(i,r) \\ ^_i D(i,r)| < ", k_,
             " -- per-round disagreement among announcements below k");
}

bool KUncertainty::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    const ProcessSet disagreement =
        pattern.round_union(r) - pattern.round_intersection(r);
    if (disagreement.size() >= k_) return false;
  }
  return true;
}

std::unique_ptr<StepEvaluator> KUncertainty::evaluator() const {
  return std::make_unique<KUncertaintyEvaluator>(k_);
}

// --------------------------------------------------------------------------
// EqualAnnouncements
// --------------------------------------------------------------------------

std::string EqualAnnouncements::name() const { return "equal-announcements"; }

std::string EqualAnnouncements::description() const {
  return "forall r,i,j: D(i,r) == D(j,r) -- equation (5)";
}

bool EqualAnnouncements::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    const RoundFaults& round = pattern.round(r);
    for (ProcId i = 1; i < pattern.n(); ++i) {
      if (round[static_cast<std::size_t>(i)] != round[0]) return false;
    }
  }
  return true;
}

std::unique_ptr<StepEvaluator> EqualAnnouncements::evaluator() const {
  return std::make_unique<EqualAnnouncementsEvaluator>();
}

// --------------------------------------------------------------------------
// QuorumSkew
// --------------------------------------------------------------------------

QuorumSkew::QuorumSkew(int t, int f) : t_(t), f_(f) {
  RRFD_REQUIRE(0 <= f && f < t);
}

std::string QuorumSkew::name() const {
  return cat("quorum-skew(t=", t_, ",f=", f_, ")");
}

std::string QuorumSkew::description() const {
  return cat("each round exists Q, |Q| <= ", t_, ": outside Q |D| <= ", f_,
             ", inside Q |D| <= ", t_);
}

bool QuorumSkew::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    if (!quorum_round_ok(pattern.round(r), t_, f_)) return false;
  }
  return true;
}

std::unique_ptr<StepEvaluator> QuorumSkew::evaluator() const {
  return std::make_unique<QuorumSkewEvaluator>(t_, f_);
}

// --------------------------------------------------------------------------
// NeverFaulty
// --------------------------------------------------------------------------

std::string NeverFaulty::name() const { return "never-faulty"; }

std::string NeverFaulty::description() const {
  return "forall i,r: D(i,r) empty -- the fault-free synchronous system";
}

bool NeverFaulty::holds(const FaultPattern& pattern) const {
  return pattern.cumulative_union().empty();
}

std::unique_ptr<StepEvaluator> NeverFaulty::evaluator() const {
  return std::make_unique<NeverFaultyEvaluator>();
}

// --------------------------------------------------------------------------
// Named systems
// --------------------------------------------------------------------------

PredicatePtr sync_omission(int f) {
  return all_of(cat("sync-omission(f=", f, ")"),
                {std::make_shared<NoSelfSuspicion>(),
                 std::make_shared<CumulativeFaultBound>(f)});
}

PredicatePtr sync_crash(int f) {
  return all_of(cat("sync-crash(f=", f, ")"),
                {std::make_shared<NoSelfSuspicion>(/*exempt_announced=*/true),
                 std::make_shared<CumulativeFaultBound>(f),
                 std::make_shared<CrashMonotonicity>()});
}

PredicatePtr async_message_passing(int f) {
  return all_of(cat("async-mp(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f)});
}

PredicatePtr swmr_shared_memory(int f) {
  return all_of(cat("swmr(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f),
                 std::make_shared<SomeoneHeardByAll>()});
}

PredicatePtr swmr_shared_memory_alt(int f) {
  return all_of(cat("swmr-alt(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f),
                 std::make_shared<NoMutualMiss>(),
                 std::make_shared<SomeoneHeardByAll>()});
}

PredicatePtr atomic_snapshot(int f) {
  return all_of(cat("atomic-snapshot(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f),
                 std::make_shared<NoSelfSuspicion>(),
                 std::make_shared<ContainmentChain>()});
}

PredicatePtr detector_s() {
  return all_of("detector-S", {std::make_shared<ImmortalProcess>()});
}

PredicatePtr k_uncertainty(int k) {
  return all_of(cat("k-uncertainty(k=", k, ")"),
                {std::make_shared<KUncertainty>(k)});
}

PredicatePtr equal_announcements() {
  return all_of("equal-announcements", {std::make_shared<EqualAnnouncements>()});
}

PredicatePtr quorum_skew(int t, int f) {
  return all_of(cat("quorum-skew(t=", t, ",f=", f, ")"),
                {std::make_shared<QuorumSkew>(t, f)});
}

}  // namespace rrfd::core
