#include "core/predicates.h"

#include "util/str.h"

namespace rrfd::core {

// --------------------------------------------------------------------------
// NoSelfSuspicion
// --------------------------------------------------------------------------

std::string NoSelfSuspicion::name() const {
  return exempt_announced_ ? "no-self-suspicion(exempt-announced)"
                           : "no-self-suspicion";
}

std::string NoSelfSuspicion::description() const {
  return "forall i,r: p_i not in D(i,r)" +
         std::string(exempt_announced_
                         ? " unless p_i was announced in an earlier round"
                         : "");
}

bool NoSelfSuspicion::holds(const FaultPattern& pattern) const {
  ProcessSet announced(pattern.n());
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      if (pattern.d(i, r).contains(i) &&
          !(exempt_announced_ && announced.contains(i))) {
        return false;
      }
    }
    announced |= pattern.round_union(r);
  }
  return true;
}

// --------------------------------------------------------------------------
// CumulativeFaultBound
// --------------------------------------------------------------------------

CumulativeFaultBound::CumulativeFaultBound(int f) : f_(f) {
  RRFD_REQUIRE(f >= 0);
}

std::string CumulativeFaultBound::name() const {
  return cat("cumulative-fault-bound(f=", f_, ")");
}

std::string CumulativeFaultBound::description() const {
  return cat("|U_{r,i} D(i,r)| <= ", f_,
             " -- at most f distinct processes ever announced");
}

bool CumulativeFaultBound::holds(const FaultPattern& pattern) const {
  return pattern.cumulative_union().size() <= f_;
}

// --------------------------------------------------------------------------
// CrashMonotonicity
// --------------------------------------------------------------------------

std::string CrashMonotonicity::name() const { return "crash-monotonicity"; }

std::string CrashMonotonicity::description() const {
  return "forall r,k: U_i D(i,r) subseteq D(k,r+1) -- announcements are "
         "permanent and universal from the next round";
}

bool CrashMonotonicity::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r < pattern.rounds(); ++r) {
    const ProcessSet announced = pattern.round_union(r);
    for (ProcId k = 0; k < pattern.n(); ++k) {
      if (!announced.subset_of(pattern.d(k, r + 1))) return false;
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// PerRoundFaultBound
// --------------------------------------------------------------------------

PerRoundFaultBound::PerRoundFaultBound(int f) : f_(f) {
  RRFD_REQUIRE(f >= 0);
}

std::string PerRoundFaultBound::name() const {
  return cat("per-round-fault-bound(f=", f_, ")");
}

std::string PerRoundFaultBound::description() const {
  return cat("forall i,r: |D(i,r)| <= ", f_,
             " -- each process misses at most f others per round");
}

bool PerRoundFaultBound::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      if (pattern.d(i, r).size() > f_) return false;
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// SomeoneHeardByAll
// --------------------------------------------------------------------------

std::string SomeoneHeardByAll::name() const { return "someone-heard-by-all"; }

std::string SomeoneHeardByAll::description() const {
  return "forall r: |U_i D(i,r)| < n -- each round some process is "
         "announced to nobody";
}

bool SomeoneHeardByAll::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    if (pattern.round_union(r).size() >= pattern.n()) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// NoMutualMiss
// --------------------------------------------------------------------------

std::string NoMutualMiss::name() const { return "no-mutual-miss"; }

std::string NoMutualMiss::description() const {
  return "forall r,i,j: p_j in D(i,r) => p_i not in D(j,r)";
}

bool NoMutualMiss::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      for (ProcId j : pattern.d(i, r).members()) {
        if (pattern.d(j, r).contains(i)) return false;
      }
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// ContainmentChain
// --------------------------------------------------------------------------

std::string ContainmentChain::name() const { return "containment-chain"; }

std::string ContainmentChain::description() const {
  return "forall r,i,j: D(i,r) subseteq D(j,r) or D(j,r) subseteq D(i,r)";
}

bool ContainmentChain::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    const RoundFaults& round = pattern.round(r);
    for (ProcId i = 0; i < pattern.n(); ++i) {
      const ProcessSet& di = round[static_cast<std::size_t>(i)];
      for (ProcId j = i + 1; j < pattern.n(); ++j) {
        const ProcessSet& dj = round[static_cast<std::size_t>(j)];
        if (!di.subset_of(dj) && !dj.subset_of(di)) return false;
      }
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// ImmortalProcess
// --------------------------------------------------------------------------

std::string ImmortalProcess::name() const { return "immortal-process"; }

std::string ImmortalProcess::description() const {
  return "exists p_j never in any D(i,r) -- weak accuracy of detector S";
}

bool ImmortalProcess::holds(const FaultPattern& pattern) const {
  return pattern.cumulative_union().size() < pattern.n();
}

// --------------------------------------------------------------------------
// KUncertainty
// --------------------------------------------------------------------------

KUncertainty::KUncertainty(int k) : k_(k) { RRFD_REQUIRE(k >= 1); }

std::string KUncertainty::name() const {
  return cat("k-uncertainty(k=", k_, ")");
}

std::string KUncertainty::description() const {
  return cat("forall r: |U_i D(i,r) \\ ^_i D(i,r)| < ", k_,
             " -- per-round disagreement among announcements below k");
}

bool KUncertainty::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    const ProcessSet disagreement =
        pattern.round_union(r) - pattern.round_intersection(r);
    if (disagreement.size() >= k_) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// EqualAnnouncements
// --------------------------------------------------------------------------

std::string EqualAnnouncements::name() const { return "equal-announcements"; }

std::string EqualAnnouncements::description() const {
  return "forall r,i,j: D(i,r) == D(j,r) -- equation (5)";
}

bool EqualAnnouncements::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    const RoundFaults& round = pattern.round(r);
    for (ProcId i = 1; i < pattern.n(); ++i) {
      if (round[static_cast<std::size_t>(i)] != round[0]) return false;
    }
  }
  return true;
}

// --------------------------------------------------------------------------
// QuorumSkew
// --------------------------------------------------------------------------

QuorumSkew::QuorumSkew(int t, int f) : t_(t), f_(f) {
  RRFD_REQUIRE(0 <= f && f < t);
}

std::string QuorumSkew::name() const {
  return cat("quorum-skew(t=", t_, ",f=", f_, ")");
}

std::string QuorumSkew::description() const {
  return cat("each round exists Q, |Q| <= ", t_, ": outside Q |D| <= ", f_,
             ", inside Q |D| <= ", t_);
}

bool QuorumSkew::round_ok(const RoundFaults& round) const {
  // The minimal witness Q is exactly the set of processes whose D exceeds
  // f; every member must still respect the bound t.
  int oversized = 0;
  for (const ProcessSet& d : round) {
    if (d.size() > t_) return false;
    if (d.size() > f_) ++oversized;
  }
  return oversized <= t_;
}

bool QuorumSkew::holds(const FaultPattern& pattern) const {
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    if (!round_ok(pattern.round(r))) return false;
  }
  return true;
}

// --------------------------------------------------------------------------
// NeverFaulty
// --------------------------------------------------------------------------

std::string NeverFaulty::name() const { return "never-faulty"; }

std::string NeverFaulty::description() const {
  return "forall i,r: D(i,r) empty -- the fault-free synchronous system";
}

bool NeverFaulty::holds(const FaultPattern& pattern) const {
  return pattern.cumulative_union().empty();
}

// --------------------------------------------------------------------------
// Named systems
// --------------------------------------------------------------------------

PredicatePtr sync_omission(int f) {
  return all_of(cat("sync-omission(f=", f, ")"),
                {std::make_shared<NoSelfSuspicion>(),
                 std::make_shared<CumulativeFaultBound>(f)});
}

PredicatePtr sync_crash(int f) {
  return all_of(cat("sync-crash(f=", f, ")"),
                {std::make_shared<NoSelfSuspicion>(/*exempt_announced=*/true),
                 std::make_shared<CumulativeFaultBound>(f),
                 std::make_shared<CrashMonotonicity>()});
}

PredicatePtr async_message_passing(int f) {
  return all_of(cat("async-mp(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f)});
}

PredicatePtr swmr_shared_memory(int f) {
  return all_of(cat("swmr(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f),
                 std::make_shared<SomeoneHeardByAll>()});
}

PredicatePtr swmr_shared_memory_alt(int f) {
  return all_of(cat("swmr-alt(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f),
                 std::make_shared<NoMutualMiss>(),
                 std::make_shared<SomeoneHeardByAll>()});
}

PredicatePtr atomic_snapshot(int f) {
  return all_of(cat("atomic-snapshot(f=", f, ")"),
                {std::make_shared<PerRoundFaultBound>(f),
                 std::make_shared<NoSelfSuspicion>(),
                 std::make_shared<ContainmentChain>()});
}

PredicatePtr detector_s() {
  return all_of("detector-S", {std::make_shared<ImmortalProcess>()});
}

PredicatePtr k_uncertainty(int k) {
  return all_of(cat("k-uncertainty(k=", k, ")"),
                {std::make_shared<KUncertainty>(k)});
}

PredicatePtr equal_announcements() {
  return all_of("equal-announcements", {std::make_shared<EqualAnnouncements>()});
}

PredicatePtr quorum_skew(int t, int f) {
  return all_of(cat("quorum-skew(t=", t, ",f=", f, ")"),
                {std::make_shared<QuorumSkew>(t, f)});
}

}  // namespace rrfd::core
