// Submodel relations: "A is a submodel of B iff P_A => P_B" (Section 2).
//
// The paper's methodology is to compare systems by contrasting their
// RRFDs; this module makes the comparison executable. For small systems
// the implication is *decided exactly* by enumerating every fault pattern
// (each D(i,r) ranges over all proper subsets of S); for larger systems
// it is probed by sampling an adversary for the candidate submodel.
//
// Pattern-space sizes: (2^n - 1)^(n * rounds). n = 3, rounds = 1 is 343;
// n = 3, rounds = 2 is ~118k; n = 4, rounds = 1 is ~50k -- exhaustive
// checking is practical exactly where counterexamples are smallest.
#pragma once

#include <functional>
#include <optional>

#include "core/adversary.h"
#include "core/predicate.h"

namespace rrfd::core {

/// Invokes `visit` for every fault pattern over n processes and `rounds`
/// rounds (every combination of proper-subset D sets). Returns the number
/// visited. If `visit` returns false, enumeration stops early.
long enumerate_patterns(int n, Round rounds,
                        const std::function<bool(const FaultPattern&)>& visit);

/// Result of an implication check.
struct ImplicationResult {
  bool holds = true;
  long patterns_checked = 0;
  std::optional<FaultPattern> counterexample;  ///< a pattern in A \ B
};

/// Exact check of P_A => P_B over all patterns of the given size.
ImplicationResult implies_exhaustive(const Predicate& a, const Predicate& b,
                                     int n, Round rounds);

/// Sampled check: records `samples` patterns from `a_adversary` (assumed
/// to satisfy A) and tests them against B. A failure refutes A => B; a
/// pass is evidence only.
ImplicationResult implies_on_samples(Adversary& a_adversary,
                                     const Predicate& b, Round rounds,
                                     int samples);

/// Exact equivalence check (both implications).
struct EquivalenceResult {
  ImplicationResult forward;   // A => B
  ImplicationResult backward;  // B => A
  bool equivalent() const { return forward.holds && backward.holds; }
};
EquivalenceResult equivalent_exhaustive(const Predicate& a, const Predicate& b,
                                        int n, Round rounds);

}  // namespace rrfd::core
