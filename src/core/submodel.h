// Submodel relations: "A is a submodel of B iff P_A => P_B" (Section 2).
//
// The paper's methodology is to compare systems by contrasting their
// RRFDs; this module makes the comparison executable. For small systems
// the implication is *decided exactly*; for larger systems it is probed
// by sampling an adversary for the candidate submodel.
//
// The exact decision procedure is a prefix-pruned DFS over rounds rather
// than a flat sweep of the (2^n - 1)^(n * rounds) pattern space:
//
//  * Incremental evaluation. Both predicates are consulted through their
//    StepEvaluator (core/predicate.h) after every round extension --
//    O(n) per enumeration node instead of O(n * rounds) per leaf.
//  * Prefix pruning. A subtree is cut as soon as A reports
//    kViolatedForever (when A is prunable(): no pattern below satisfies
//    A, so the implication is vacuous there) or B reports
//    kSatisfiedForever (no counterexample can exist below). Cut subtrees
//    still contribute their full leaf count to `patterns_checked`.
//  * Symmetry reduction. When both predicates are symmetric() the engine
//    expands only first rounds that are canonical under process renaming
//    and weights each by its orbit size, dividing the work by up to n!.
//  * Deterministic sharding. The first-round index range is split into a
//    fixed number of shards *independent of thread count*; shard results
//    are spliced back in shard order, so the outcome (counterexample,
//    counts, or budget error) is byte-identical whether shards run
//    serially or on any number of threads. Parallel execution is
//    injected via EnumOptions::runner (see sweep/submodel_parallel.h);
//    core itself stays dependency-free.
//
// Runaway searches are stopped by a per-shard node budget (a
// ContractViolation, reported deterministically) instead of the old
// hard n/rounds cap; pattern spaces whose size overflows int64 are
// rejected up front.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/adversary.h"
#include "core/predicate.h"
#include "core/words.h"

namespace rrfd::core {

/// Invokes `visit` for every fault pattern over n processes and `rounds`
/// rounds (every combination of proper-subset D sets). Returns the number
/// visited. If `visit` returns false, enumeration stops early. This is
/// the naive reference sweep (no pruning, no symmetry); the exact
/// implication checks below agree with it and are tested against it.
/// Requires the space size (2^n - 1)^(n * rounds) to be representable in
/// int64 -- termination within a lifetime is the caller's problem.
std::int64_t enumerate_patterns(
    int n, Round rounds, const std::function<bool(const FaultPattern&)>& visit);

/// Process-permutation symmetry reduction policy for the exact checks.
enum class Symmetry {
  /// Reduce iff both predicates declare symmetric() and n is small
  /// enough (n <= 4) that scanning n! renamings per first round is a
  /// clear win. The default.
  kAuto,
  /// Never reduce. Required when comparing against the naive sweep
  /// node-for-node; also the only sound choice for asymmetric custom
  /// predicates (kAuto handles that automatically).
  kOff,
  /// Always reduce. Requires both predicates to be symmetric().
  kOn,
};

/// Suffix-count memoization policy for the exact checks. When enabled,
/// each shard keeps a transposition table keyed by (canonical evaluator
/// state of A, of B, rounds remaining) whose value is the exact work
/// profile of the whole suffix subtree, so a repeated state is decided
/// in O(1) instead of re-enumerating up to (2^n - 1)^(n * remaining)
/// patterns. Sound only through StepEvaluator::state_bytes; evaluators
/// without a canonical key (the whole-pattern fallback, custom
/// predicates) silently fall back to the plain DFS. Memoization never
/// changes any result or statistic other than the memo_* counters: the
/// counts, counterexample, budget behaviour, and sharded byte-identity
/// are exactly those of the unmemoized search. See "Suffix memoization"
/// in DESIGN.md.
enum class Memo {
  /// Memoize whenever sound and useful (both evaluators keyed, at least
  /// two rounds). The default.
  kAuto,
  /// Never memoize.
  kOff,
  /// Memoize whenever sound (same conditions as kAuto today; kept
  /// distinct so kAuto may grow cost heuristics without a knob change).
  kOn,
};

/// Executes `job(0) .. job(n_jobs - 1)`, each exactly once, in any order
/// and on any threads. The default (a null runner) is a serial loop;
/// sweep/submodel_parallel.h supplies a pool-backed one. Results do not
/// depend on the runner choice.
using ShardRunner =
    std::function<void(int n_jobs, const std::function<void(int)>& job)>;

/// Tuning knobs for the exact checks. The defaults reproduce the
/// documented semantics; every knob only changes *how fast* an answer is
/// found, never which answer.
struct EnumOptions {
  /// Cut subtrees on kViolatedForever (prunable A) / kSatisfiedForever
  /// (B). Off = visit every node; only useful as a benchmark baseline.
  bool prune = true;
  Symmetry symmetry = Symmetry::kAuto;
  /// Max enumeration nodes per shard before the check aborts with a
  /// ContractViolation. Exceeding it is reported deterministically: the
  /// lowest-numbered exceeding shard wins, regardless of thread count.
  std::int64_t node_budget = 1'000'000'000;
  /// Shard executor; null runs shards serially in-process.
  ShardRunner runner;
  /// Which representation the DFS feeds the evaluators: kWord hands the
  /// odometer digits to StepEvaluator::push_round_words directly (no
  /// ProcessSet materialization per node); kSet is the original
  /// RoundFaults path, kept as the equivalence oracle. Same verdicts,
  /// counts, and counterexamples either way.
  EnginePath path = EnginePath::kWord;
  /// Suffix-count memoization over canonical evaluator states. Like
  /// every other knob: only changes how fast, never which answer.
  Memo memo = Memo::kAuto;
};

/// Work accounting for one exact check.
struct EnumStats {
  std::int64_t nodes = 0;            ///< prefix nodes expanded
  std::int64_t leaves = 0;           ///< full-depth nodes expanded
  std::int64_t pruned_subtrees = 0;  ///< inner nodes cut by a verdict
  /// Complete patterns whose implication status was decided, weighted by
  /// symmetry orbit: equals the full space size when the implication
  /// holds everywhere.
  std::int64_t patterns_decided = 0;
  std::int64_t expanded_roots = 0;  ///< first rounds expanded (canonical)
  std::int64_t total_roots = 0;     ///< (2^n - 1)^n
  bool symmetry_used = false;
  int shards = 0;
  /// Suffix-memoization accounting (all zero when memoization is off or
  /// the evaluators are keyless). Deterministic at any thread count,
  /// like every other field: tables are per-shard plus a seed table
  /// filled serially before the shards run. memo_entries counts seed
  /// entries once plus every shard-local insertion; a memo hit's
  /// decided-pattern mass is included in patterns_decided, and its
  /// subtree's nodes/leaves/pruned_subtrees are included in those
  /// fields, so all non-memo statistics equal the unmemoized run's.
  std::int64_t memo_hits = 0;
  std::int64_t memo_misses = 0;
  std::int64_t memo_entries = 0;
};

/// Result of an implication check.
struct ImplicationResult {
  bool holds = true;
  /// Complete patterns decided (== EnumStats::patterns_decided for the
  /// exact checks; sample count for implies_on_samples). On a refuted
  /// exact check this reflects only the work up to the counterexample.
  std::int64_t patterns_checked = 0;
  std::optional<FaultPattern> counterexample;  ///< a pattern in A \ B
  EnumStats stats;                             ///< exact checks only
};

/// Exact check of P_A => P_B over all patterns of the given size, with
/// default options. The refuting counterexample, when one exists, is the
/// first in deterministic engine order: shards take strided first-round
/// indices (shard s visits s, s + shards, ...), the lowest-numbered
/// refuting shard wins, and within a shard roots are visited in
/// ascending index with deeper rounds depth-first, process 0's digit
/// varying fastest. The order is fixed by the shard count, never by the
/// runner's thread count.
ImplicationResult implies_exhaustive(const Predicate& a, const Predicate& b,
                                     int n, Round rounds);

/// Exact check with explicit options (pruning, symmetry, budget, runner).
ImplicationResult implies_exhaustive(const Predicate& a, const Predicate& b,
                                     int n, Round rounds,
                                     const EnumOptions& options);

/// Sampled check: records `samples` patterns from `a_adversary` (assumed
/// to satisfy A) and tests them against B. A failure refutes A => B; a
/// pass is evidence only.
ImplicationResult implies_on_samples(Adversary& a_adversary,
                                     const Predicate& b, Round rounds,
                                     int samples);

/// Exact equivalence check (both implications).
struct EquivalenceResult {
  ImplicationResult forward;   // A => B
  ImplicationResult backward;  // B => A
  bool equivalent() const { return forward.holds && backward.holds; }
};
EquivalenceResult equivalent_exhaustive(const Predicate& a, const Predicate& b,
                                        int n, Round rounds);
EquivalenceResult equivalent_exhaustive(const Predicate& a, const Predicate& b,
                                        int n, Round rounds,
                                        const EnumOptions& options);

}  // namespace rrfd::core
