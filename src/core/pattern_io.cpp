#include "core/pattern_io.h"

#include <cctype>
#include <sstream>

#include "util/check.h"

namespace rrfd::core {
namespace {

bool is_digit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

void skip_ws(const std::string& line, std::size_t& pos) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos]))) {
    ++pos;
  }
}

/// Parses a decimal id/count starting at line[pos] (which must be a
/// digit); advances pos past the digits. `limit` bounds the value so the
/// accumulation can never overflow int, whatever the input length.
int parse_number(const std::string& line, std::size_t& pos, int limit,
                 const char* what) {
  RRFD_REQUIRE_MSG(pos < line.size() && is_digit(line[pos]),
                   std::string("expected a number for ") + what +
                       " in pattern text");
  int value = 0;
  while (pos < line.size() && is_digit(line[pos])) {
    value = value * 10 + (line[pos] - '0');
    RRFD_REQUIRE_MSG(value <= limit,
                     std::string(what) + " out of range in pattern text");
    ++pos;
  }
  return value;
}

/// Parses "{a,b,c}" starting at text[pos]; advances pos past the set.
/// Strict: members are comma-separated, no trailing or repeated commas.
ProcessSet parse_set(const std::string& line, std::size_t& pos, int n) {
  skip_ws(line, pos);
  RRFD_REQUIRE_MSG(pos < line.size() && line[pos] == '{',
                   "expected '{' in pattern text");
  ++pos;
  ProcessSet out(n);
  skip_ws(line, pos);
  bool expect_member = false;  // true right after a comma
  while (pos < line.size() && line[pos] != '}') {
    const int value = parse_number(line, pos, n - 1, "process id");
    out.add(value);
    expect_member = false;
    skip_ws(line, pos);
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      skip_ws(line, pos);
      expect_member = true;
    }
  }
  RRFD_REQUIRE_MSG(pos < line.size() && line[pos] == '}',
                   "unterminated set in pattern text");
  RRFD_REQUIRE_MSG(!expect_member,
                   "trailing comma in set in pattern text");
  ++pos;
  return out;
}

}  // namespace

std::string pattern_to_text(const FaultPattern& pattern) {
  std::ostringstream os;
  write_pattern(os, pattern);
  return os.str();
}

void write_pattern(std::ostream& os, const FaultPattern& pattern) {
  os << "n=" << pattern.n() << '\n';
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      if (i > 0) os << ',';
      os << pattern.d(i, r).to_string();
    }
    os << '\n';
  }
}

FaultPattern pattern_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_pattern(is);
}

FaultPattern read_pattern(std::istream& is) {
  std::string line;
  // Header (skipping comments and blank lines).
  int n = -1;
  while (std::getline(is, line)) {
    std::size_t pos = 0;
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] == '#') continue;
    RRFD_REQUIRE_MSG(line.compare(pos, 2, "n=") == 0,
                     "pattern text must start with an 'n=<count>' header");
    pos += 2;
    n = parse_number(line, pos, kMaxProcesses, "process count");
    RRFD_REQUIRE_MSG(n > 0, "process count must be positive in pattern text");
    skip_ws(line, pos);
    RRFD_REQUIRE_MSG(pos >= line.size(),
                     "trailing garbage in pattern header");
    break;
  }
  RRFD_REQUIRE_MSG(n > 0, "missing pattern header");
  FaultPattern pattern(n);

  while (std::getline(is, line)) {
    std::size_t pos = 0;
    skip_ws(line, pos);
    if (pos >= line.size() || line[pos] == '#') continue;
    RoundFaults round;
    for (ProcId i = 0; i < n; ++i) {
      if (i > 0) {
        skip_ws(line, pos);
        RRFD_REQUIRE_MSG(pos < line.size() && line[pos] == ',',
                         "expected ',' between announcement sets");
        ++pos;
      }
      round.push_back(parse_set(line, pos, n));
    }
    skip_ws(line, pos);
    RRFD_REQUIRE_MSG(pos >= line.size(), "trailing garbage in pattern line");
    pattern.append(std::move(round));
  }
  return pattern;
}

}  // namespace rrfd::core
