#include "core/pattern_io.h"

#include <cctype>
#include <sstream>

#include "util/check.h"

namespace rrfd::core {
namespace {

/// Parses "{a,b,c}" starting at text[pos]; advances pos past the set.
ProcessSet parse_set(const std::string& line, std::size_t& pos, int n) {
  auto skip_ws = [&] {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  };
  skip_ws();
  RRFD_REQUIRE_MSG(pos < line.size() && line[pos] == '{',
                   "expected '{' in pattern text");
  ++pos;
  ProcessSet out(n);
  skip_ws();
  while (pos < line.size() && line[pos] != '}') {
    RRFD_REQUIRE_MSG(std::isdigit(static_cast<unsigned char>(line[pos])),
                     "expected a process id in pattern text");
    int value = 0;
    while (pos < line.size() &&
           std::isdigit(static_cast<unsigned char>(line[pos]))) {
      value = value * 10 + (line[pos] - '0');
      ++pos;
    }
    RRFD_REQUIRE_MSG(value < n, "process id out of range in pattern text");
    out.add(value);
    skip_ws();
    if (pos < line.size() && line[pos] == ',') {
      ++pos;
      skip_ws();
    }
  }
  RRFD_REQUIRE_MSG(pos < line.size() && line[pos] == '}',
                   "unterminated set in pattern text");
  ++pos;
  return out;
}

}  // namespace

std::string pattern_to_text(const FaultPattern& pattern) {
  std::ostringstream os;
  write_pattern(os, pattern);
  return os.str();
}

void write_pattern(std::ostream& os, const FaultPattern& pattern) {
  os << "n=" << pattern.n() << '\n';
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    for (ProcId i = 0; i < pattern.n(); ++i) {
      if (i > 0) os << ',';
      os << pattern.d(i, r).to_string();
    }
    os << '\n';
  }
}

FaultPattern pattern_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_pattern(is);
}

FaultPattern read_pattern(std::istream& is) {
  std::string line;
  // Header (skipping comments and blank lines).
  int n = -1;
  while (std::getline(is, line)) {
    std::size_t pos = 0;
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    if (pos >= line.size() || line[pos] == '#') continue;
    RRFD_REQUIRE_MSG(line.compare(pos, 2, "n=") == 0,
                     "pattern text must start with an 'n=<count>' header");
    n = std::stoi(line.substr(pos + 2));
    break;
  }
  RRFD_REQUIRE_MSG(n > 0, "missing pattern header");
  FaultPattern pattern(n);

  while (std::getline(is, line)) {
    std::size_t pos = 0;
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    if (pos >= line.size() || line[pos] == '#') continue;
    RoundFaults round;
    for (ProcId i = 0; i < n; ++i) {
      round.push_back(parse_set(line, pos, n));
      while (pos < line.size() && (std::isspace(static_cast<unsigned char>(line[pos])) || line[pos] == ',')) ++pos;
    }
    RRFD_REQUIRE_MSG(pos >= line.size(), "trailing garbage in pattern line");
    pattern.append(std::move(round));
  }
  return pattern;
}

}  // namespace rrfd::core
