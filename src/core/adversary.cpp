#include "core/adversary.h"

namespace rrfd::core {

void Adversary::next_round_words(std::uint64_t* out) {
  const RoundFaults round = next_round();
  for (std::size_t i = 0; i < round.size(); ++i) out[i] = round[i].bits();
}

FaultPattern record_pattern(Adversary& adversary, Round rounds) {
  RRFD_REQUIRE(rounds >= 0);
  FaultPattern pattern(adversary.n());
  for (Round r = 1; r <= rounds; ++r) pattern.append(adversary.next_round());
  return pattern;
}

}  // namespace rrfd::core
