#include "core/adversary.h"

namespace rrfd::core {

FaultPattern record_pattern(Adversary& adversary, Round rounds) {
  RRFD_REQUIRE(rounds >= 0);
  FaultPattern pattern(adversary.n());
  for (Round r = 1; r <= rounds; ++r) pattern.append(adversary.next_round());
  return pattern;
}

}  // namespace rrfd::core
