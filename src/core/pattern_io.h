// Textual serialization of fault patterns.
//
// Counterexamples are first-class artifacts in this library -- the
// exhaustive lattice checker returns them, the benches print them, and
// regression tests want to pin them down. The format is compact and
// human-editable, one round per line:
//
//   n=4
//   {1},{},{1,3},{}
//   {2},{2},{},{2}
//
// Line r holds D(0,r),...,D(n-1,r). Whitespace is ignored; lines starting
// with '#' are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "core/fault_pattern.h"

namespace rrfd::core {

/// Serializes a pattern (see header comment for the format).
std::string pattern_to_text(const FaultPattern& pattern);

/// Parses the textual format. Throws ContractViolation on malformed
/// input (bad header, wrong arity, out-of-range members, D = S).
FaultPattern pattern_from_text(const std::string& text);

/// Stream variants.
void write_pattern(std::ostream& os, const FaultPattern& pattern);
FaultPattern read_pattern(std::istream& is);

}  // namespace rrfd::core
