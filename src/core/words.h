// Word-level mask utilities for the engine's fast path.
//
// A ProcessSet is one 64-bit word plus the system size; the fast round
// loop hoists those words out of the per-object wrappers into
// struct-of-arrays arenas so whole rounds can be combined with plain
// AND/OR/popcount passes. Everything here is bit-for-bit interchangeable
// with the ProcessSet / FaultPattern path: MaskRounds::to_fault_pattern
// reproduces the exact FaultPattern the set-based loop would have built,
// and the equivalence suites (tests/core/engine_equivalence_test.cpp,
// tests/core/differential_oracle_test.cpp) hold the two representations
// against each other on every run.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "core/fault_pattern.h"
#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::core {

/// Which representation a round loop or enumeration walks. The two are
/// observably identical -- same result bytes, same trace events, same
/// RNG consumption; kSet is the original per-ProcessSet code, kept as
/// the checked slow path / equivalence oracle for the word-parallel
/// kWord implementation (DESIGN.md "Word arenas"). Selects the engine
/// loop via EngineOptions::path and the submodel DFS via
/// EnumOptions::path.
enum class EnginePath : std::uint8_t {
  kWord = 0,  ///< SoA uint64_t arenas, whole-word predicate cores
  kSet,       ///< per-round RoundFaults allocation + per-set algebra
};

/// The mask of S = {0..n-1} as a raw word (ProcessSet::all(n).bits()
/// without constructing the set).
inline std::uint64_t full_mask(int n) {
  RRFD_ASSERT(0 < n && n <= kMaxProcesses);
  return (n == kMaxProcesses) ? ~std::uint64_t{0}
                              : ((std::uint64_t{1} << n) - 1);
}

/// k-th set bit of `bits` (0-based, increasing order). Requires
/// k < popcount(bits). The allocation-free analogue of members()[k].
inline int nth_set_bit(std::uint64_t bits, int k) {
  RRFD_ASSERT(k >= 0 && k < std::popcount(bits));
  for (; k > 0; --k) bits &= bits - 1;  // drop the k lowest members
  return std::countr_zero(bits);
}

/// A fault pattern as a struct-of-arrays word arena: round-major storage,
/// `round(r)[i]` = D(i,r).bits(). This is what the engine's word path
/// records instead of per-round vector<ProcessSet> allocations; the
/// amortized per-round cost is n word stores.
class MaskRounds {
 public:
  explicit MaskRounds(int n) : n_(n) {
    RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  }

  int n() const { return n_; }
  Round rounds() const {
    return static_cast<Round>(words_.size() / static_cast<std::size_t>(n_));
  }

  /// Pre-allocates storage for `r` rounds (push_round never reallocates
  /// until they are used up).
  void reserve_rounds(Round r) {
    if (r > 0) {
      words_.reserve(static_cast<std::size_t>(r) *
                     static_cast<std::size_t>(n_));
    }
  }

  /// Appends one zeroed round and returns its n-word slice for the caller
  /// to fill. The pointer is valid until the next push_round().
  std::uint64_t* push_round() {
    words_.resize(words_.size() + static_cast<std::size_t>(n_), 0);
    return words_.data() + words_.size() - static_cast<std::size_t>(n_);
  }

  void pop_round() {
    RRFD_REQUIRE(rounds() > 0);
    words_.resize(words_.size() - static_cast<std::size_t>(n_));
  }

  /// Words of (1-based) round r: round(r)[i] = D(i,r).bits().
  const std::uint64_t* round(Round r) const {
    RRFD_REQUIRE(1 <= r && r <= rounds());
    return words_.data() +
           static_cast<std::size_t>(r - 1) * static_cast<std::size_t>(n_);
  }

  /// Union / intersection over i of D(i,r), as words.
  std::uint64_t round_or(Round r) const {
    const std::uint64_t* d = round(r);
    std::uint64_t u = 0;
    for (int i = 0; i < n_; ++i) u |= d[i];
    return u;
  }
  std::uint64_t round_and(Round r) const {
    const std::uint64_t* d = round(r);
    std::uint64_t x = full_mask(n_);
    for (int i = 0; i < n_; ++i) x &= d[i];
    return x;
  }

  /// The equivalent set-based pattern (identical to what FaultPattern
  /// appends would have produced round by round). Words are validated
  /// when they are recorded -- the engine REQUIREs mask-within-S and
  /// D != S on every word it pushes -- so this writes them straight into
  /// the pattern's storage and only re-checks in debug builds.
  FaultPattern to_fault_pattern() const {
    FaultPattern p(n_);
    p.rounds_.reserve(static_cast<std::size_t>(rounds()));
    [[maybe_unused]] const std::uint64_t full = full_mask(n_);
    for (Round r = 1; r <= rounds(); ++r) {
      const std::uint64_t* d = round(r);
      RoundFaults rf(static_cast<std::size_t>(n_), ProcessSet(n_));
      for (int i = 0; i < n_; ++i) {
        RRFD_ASSERT((d[i] & ~full) == 0 && d[i] != full);
        rf[static_cast<std::size_t>(i)].bits_ = d[i];
      }
      p.rounds_.push_back(std::move(rf));
    }
    return p;
  }

  static MaskRounds from_fault_pattern(const FaultPattern& p) {
    MaskRounds m(p.n());
    for (Round r = 1; r <= p.rounds(); ++r) {
      std::uint64_t* d = m.push_round();
      for (int i = 0; i < p.n(); ++i) d[i] = p.d(i, r).bits();
    }
    return m;
  }

 private:
  int n_;
  std::vector<std::uint64_t> words_;
};

}  // namespace rrfd::core
