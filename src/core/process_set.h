// A set of process identifiers, the basic currency of RRFD predicates.
//
// D(i,r) -- the set of processes the fault detector tells p_i not to wait
// for in round r -- is a ProcessSet, as are views, suspicion unions, and
// quorums. Implemented as a 64-bit mask plus the system size n, so that
// complements are well-defined and mixing sets from systems of different
// sizes is a contract violation instead of a silent bug.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/types.h"
#include "util/check.h"

namespace rrfd::core {

/// Immutable-size set over {0..n-1} with value semantics.
class ProcessSet {
 public:
  /// The empty set over a system of `n` processes.
  explicit ProcessSet(int n) : n_(n), bits_(0) {
    RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  }

  /// The set containing exactly `members`, over a system of `n` processes.
  ProcessSet(int n, std::initializer_list<ProcId> members) : ProcessSet(n) {
    for (ProcId p : members) add(p);
  }

  /// The full set S = {0..n-1}.
  static ProcessSet all(int n) {
    ProcessSet s(n);
    s.bits_ = (n == kMaxProcesses) ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << n) - 1);
    return s;
  }

  /// The empty set (same as the single-argument constructor; reads better
  /// at call sites that also use all()).
  static ProcessSet none(int n) { return ProcessSet(n); }

  /// The singleton {p}.
  static ProcessSet single(int n, ProcId p) { return ProcessSet(n, {p}); }

  int n() const { return n_; }
  int size() const { return std::popcount(bits_); }
  bool empty() const { return bits_ == 0; }
  bool full() const { return *this == all(n_); }

  bool contains(ProcId p) const {
    check_member(p);
    return (bits_ >> p) & 1;
  }

  void add(ProcId p) {
    check_member(p);
    bits_ |= std::uint64_t{1} << p;
  }

  void remove(ProcId p) {
    check_member(p);
    bits_ &= ~(std::uint64_t{1} << p);
  }

  /// Returns a copy with `p` added / removed (for fluent construction).
  ProcessSet with(ProcId p) const {
    ProcessSet s = *this;
    s.add(p);
    return s;
  }
  ProcessSet without(ProcId p) const {
    ProcessSet s = *this;
    s.remove(p);
    return s;
  }

  /// Set algebra. All binary operations require both operands to belong to
  /// the same system size.
  ProcessSet operator|(const ProcessSet& o) const {
    check_same(o);
    return from_bits(n_, bits_ | o.bits_);
  }
  ProcessSet operator&(const ProcessSet& o) const {
    check_same(o);
    return from_bits(n_, bits_ & o.bits_);
  }
  ProcessSet operator-(const ProcessSet& o) const {
    check_same(o);
    return from_bits(n_, bits_ & ~o.bits_);
  }
  ProcessSet& operator|=(const ProcessSet& o) { return *this = *this | o; }
  ProcessSet& operator&=(const ProcessSet& o) { return *this = *this & o; }
  ProcessSet& operator-=(const ProcessSet& o) { return *this = *this - o; }

  /// Complement with respect to S = {0..n-1}.
  ProcessSet complement() const { return all(n_) - *this; }

  bool subset_of(const ProcessSet& o) const {
    check_same(o);
    return (bits_ & ~o.bits_) == 0;
  }

  bool intersects(const ProcessSet& o) const {
    check_same(o);
    return (bits_ & o.bits_) != 0;
  }

  friend bool operator==(const ProcessSet& a, const ProcessSet& b) {
    return a.n_ == b.n_ && a.bits_ == b.bits_;
  }
  friend bool operator!=(const ProcessSet& a, const ProcessSet& b) {
    return !(a == b);
  }

  /// Total order (by system size then mask); lets ProcessSet key std::map.
  friend bool operator<(const ProcessSet& a, const ProcessSet& b) {
    if (a.n_ != b.n_) return a.n_ < b.n_;
    return a.bits_ < b.bits_;
  }

  /// Lowest member; requires non-empty. Theorem 3.1's decision rule picks
  /// the lowest identifier outside D(i,1), so this is on the hot path.
  ProcId min() const {
    RRFD_REQUIRE(!empty());
    return std::countr_zero(bits_);
  }

  /// Highest member; requires non-empty.
  ProcId max() const {
    RRFD_REQUIRE(!empty());
    return 63 - std::countl_zero(bits_);
  }

  /// Allocation-free iteration over members in increasing order; lets
  /// `for (ProcId p : set)` run on hot paths (one countr_zero + one
  /// clear-lowest-bit per member, no vector).
  class const_iterator {
   public:
    using value_type = ProcId;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    const_iterator() = default;
    explicit const_iterator(std::uint64_t bits) : bits_(bits) {}

    ProcId operator*() const { return std::countr_zero(bits_); }
    const_iterator& operator++() {
      bits_ &= bits_ - 1;  // clear the lowest set bit
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator old = *this;
      ++*this;
      return old;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.bits_ == b.bits_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) {
      return a.bits_ != b.bits_;
    }

   private:
    std::uint64_t bits_ = 0;
  };

  const_iterator begin() const { return const_iterator(bits_); }
  const_iterator end() const { return const_iterator(0); }

  /// Members in increasing order (allocates; prefer range-for on the set
  /// itself where the vector is not needed).
  std::vector<ProcId> members() const;

  /// Raw mask, exposed for hashing and compact trace encodings.
  std::uint64_t bits() const { return bits_; }

  /// Builds a set from a raw mask (must fit in n bits).
  static ProcessSet from_bits(int n, std::uint64_t bits) {
    ProcessSet s(n);
    RRFD_REQUIRE((bits & ~all(n).bits_) == 0);
    s.bits_ = bits;
    return s;
  }

  /// Renders as "{0,2,5}".
  std::string to_string() const;

 private:
  // The SoA word arena writes pre-validated words straight into bits_
  // when materializing a FaultPattern (core/words.h).
  friend class MaskRounds;

  void check_member(ProcId p) const { RRFD_REQUIRE(0 <= p && p < n_); }
  void check_same(const ProcessSet& o) const { RRFD_REQUIRE(n_ == o.n_); }

  int n_;
  std::uint64_t bits_;
};

std::ostream& operator<<(std::ostream& os, const ProcessSet& s);

}  // namespace rrfd::core
