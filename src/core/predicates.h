// The model zoo: every RRFD predicate defined in the paper.
//
// Section 2 items 1-6, the k-uncertainty detector of Theorem 3.1, and the
// equal-announcement detector of Section 5 (equation 5). Primitive
// constraints are separate classes so that the submodel lattice ("P_A =>
// P_B") is visible in the composition; factory functions at the bottom
// assemble the named systems exactly as the paper does.
//
// Every zoo predicate is *prunable* (its violations are stable under
// extending the pattern with more rounds) and *symmetric* (invariant
// under renaming processes), and each provides a true incremental
// StepEvaluator — O(n) per pushed round — so the exhaustive submodel
// engine (core/submodel.h) can prefix-prune and symmetry-reduce its
// enumeration. predicates_test pins evaluator verdicts against holds()
// on every prefix.
#pragma once

#include "core/predicate.h"

namespace rrfd::core {

// ---------------------------------------------------------------------------
// Primitive constraints
// ---------------------------------------------------------------------------

/// forall i, r: p_i not in D(i,r). First half of predicate (1).
///
/// The crash model needs a relaxation: once a process has been announced by
/// somebody, monotonicity (predicate 2) forces it into *every* later D set,
/// including its own. `exempt_announced` permits self-suspicion for
/// processes already in the cumulative union of earlier rounds, resolving
/// the tension between predicates (1) and (2) the way the paper intends
/// (a crashed process has halted; its own announcements are moot).
class NoSelfSuspicion final : public Predicate {
 public:
  explicit NoSelfSuspicion(bool exempt_announced = false)
      : exempt_announced_(exempt_announced) {}
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }

 private:
  bool exempt_announced_;
};

/// |U_{r>0} U_{p_i} D(i,r)| <= f. Second half of predicate (1): at most f
/// distinct processes are ever announced, across all rounds and observers.
class CumulativeFaultBound final : public Predicate {
 public:
  explicit CumulativeFaultBound(int f);
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }

  int f() const { return f_; }

 private:
  int f_;
};

/// forall r>0, p_k: U_{p_i} D(i,r) subseteq D(k,r+1). Predicate (2):
/// a process announced anywhere in round r is announced everywhere from
/// round r+1 on -- the signature of a real crash.
class CrashMonotonicity final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

/// forall i, r: |D(i,r)| <= f. Predicate (3): the asynchronous bound --
/// each process may miss at most f others in each round, but *which* f may
/// change freely between rounds and observers.
class PerRoundFaultBound final : public Predicate {
 public:
  explicit PerRoundFaultBound(int f);
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }

  int f() const { return f_; }

 private:
  int f_;
};

/// forall r: |U_{p_i} D(i,r)| < n. Predicate (4): in every round at least
/// one process is announced to nobody -- the "first writer is read by all"
/// property of SWMR shared memory; rules out network partitions.
class SomeoneHeardByAll final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

/// forall r, i, j: p_j in D(i,r) => p_i not in D(j,r). The alternative
/// shared-memory constraint discussed in item 4: no two processes miss
/// each other in the same round.
class NoMutualMiss final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

/// forall r, i, j: D(i,r) subseteq D(j,r) or D(j,r) subseteq D(i,r).
/// Containment half of the Atomic-Snapshot model (item 5): announcements
/// in a round form a chain, exactly the structure of immediate snapshots.
class ContainmentChain final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

/// exists p_j such that p_j is never in any D(i,r). Item 6: the RRFD
/// counterpart of the strong failure detector S (weak accuracy: some
/// process is never suspected by anyone). Over any finite pattern this is
/// equivalent to CumulativeFaultBound(n-1); the equivalence is tested.
class ImmortalProcess final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

/// forall r: |U_i D(i,r) minus ^_i D(i,r)| < k. Theorem 3.1's detector: per
/// round, fewer than k processes are announced to some but not to all --
/// the detector's "uncertainty" is bounded by k.
class KUncertainty final : public Predicate {
 public:
  explicit KUncertainty(int k);
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }

  int k() const { return k_; }

 private:
  int k_;
};

/// forall r, i, j: D(i,r) == D(j,r). Equation (5), Section 5: the
/// semi-synchronous detector announces identically to everybody. This is
/// KUncertainty with k = 1.
class EqualAnnouncements final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

/// Item 3's system B: in each round there is a set Q, |Q| <= t, such that
/// processes outside Q miss at most f others while processes inside Q may
/// miss up to t. With f < t and 2t < n, two rounds of B implement one
/// round of the plain asynchronous system A (see xform::RoundCombiner);
/// B strictly contains A, which is why A is *not* a weakest RRFD for the
/// asynchronous message-passing system.
class QuorumSkew final : public Predicate {
 public:
  QuorumSkew(int t, int f);
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }

  int t() const { return t_; }
  int f() const { return f_; }

 private:
  int t_;
  int f_;
};

/// D(i,r) always empty: the fault-free synchronous system (Section 6's
/// Awerbuch synchronizer setting, where synchrony and asynchrony coincide).
class NeverFaulty final : public Predicate {
 public:
  std::string name() const override;
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override { return true; }
  bool symmetric() const override { return true; }
};

// ---------------------------------------------------------------------------
// Named systems (Section 2 / 3 / 5 compositions)
// ---------------------------------------------------------------------------

/// Item 1: synchronous message passing, at most f send-omission faults.
/// Predicate (1): no self-suspicion AND cumulative bound f.
PredicatePtr sync_omission(int f);

/// Item 2: synchronous message passing, at most f crash faults.
/// Predicate (1) (with the announced-process exemption) AND predicate (2).
PredicatePtr sync_crash(int f);

/// Item 3: asynchronous message passing, at most f crash failures.
/// Predicate (3).
PredicatePtr async_message_passing(int f);

/// Item 4: asynchronous SWMR shared memory, at most f crash failures.
/// Predicate (3) AND predicate (4).
PredicatePtr swmr_shared_memory(int f);

/// Item 4 (alternative reading): predicate (3) AND no-mutual-miss AND
/// predicate (4) -- the conjunction the paper says is needed at the least.
PredicatePtr swmr_shared_memory_alt(int f);

/// Item 5: asynchronous Atomic-Snapshot shared memory, at most f crashes.
/// Predicate (3) /\ no self-suspicion /\ containment chain.
PredicatePtr atomic_snapshot(int f);

/// Item 6: the strong-failure-detector system S (all but one process may
/// crash): some process is never announced to anyone.
PredicatePtr detector_s();

/// Theorem 3.1: the k-set-agreement detector.
PredicatePtr k_uncertainty(int k);

/// Section 5 / equation (5): the semi-synchronous detector.
PredicatePtr equal_announcements();

/// Item 3's system B (see QuorumSkew).
PredicatePtr quorum_skew(int t, int f);

}  // namespace rrfd::core
