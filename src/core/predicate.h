// Predicate: what *is* an RRFD model.
//
// The paper defines a model as a predicate over the family of sets
// {D(i,r)}. A Predicate evaluates a FaultPattern; an adversary is valid
// for a model iff every pattern it can emit satisfies the model's
// predicate. Submodel relations (Section 2: "A is a submodel of B iff
// P_A => P_B") are checked with implies_on_samples() and, for small
// systems, decided exactly by the exhaustive engine in core/submodel.h.
//
// Exhaustive decision is only tractable because predicates expose an
// *incremental* view of themselves: a StepEvaluator consumes a pattern
// one round at a time and reports, after each round, whether the search
// below the current prefix can be cut. See "Exhaustive model checking"
// in DESIGN.md for the full contract.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/fault_pattern.h"

namespace rrfd::core {

/// Byte-append helpers for StepEvaluator::state_bytes implementations.
/// Fixed-width little-endian encodings keep keys canonical across
/// platforms; length prefixes make variable-length child keys
/// self-delimiting inside composite folds.
namespace statekey {

inline void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

inline void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Reserves a u32 length slot and returns its position; pair with
/// end_length_prefix after appending the variable-length payload.
inline std::size_t begin_length_prefix(std::vector<std::uint8_t>& out) {
  const std::size_t pos = out.size();
  append_u32(out, 0);
  return pos;
}

inline void end_length_prefix(std::vector<std::uint8_t>& out,
                              std::size_t pos) {
  const auto len = static_cast<std::uint32_t>(out.size() - pos - 4);
  for (int i = 0; i < 4; ++i) {
    out[pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

}  // namespace statekey

/// Verdict of a StepEvaluator after one more round has been pushed.
enum class StepVerdict {
  /// The pushed prefix, taken as a complete pattern, violates the
  /// predicate. If the owning predicate is prunable() (its violations are
  /// stable under extension), every extension of the prefix violates it
  /// too, and an enumeration engine may cut the whole subtree.
  kViolatedForever,
  /// The pushed prefix, taken as a complete pattern, satisfies the
  /// predicate; extensions are undetermined.
  kSatisfiedSoFar,
  /// The pushed prefix satisfies the predicate and so does *every*
  /// extension of it; an enumeration engine may stop consulting this
  /// evaluator below the current depth. Evaluators must only return this
  /// when the guarantee is unconditional (e.g. a per-round bound that no
  /// legal round can exceed).
  kSatisfiedForever,
};

/// Incremental, backtrackable view of a Predicate for DFS enumeration.
///
/// Usage: begin() once, then push_round()/pop_round() in LIFO order as the
/// enumeration extends and retracts the pattern. The evaluator owns all
/// state it needs to answer in O(n) per push (the zoo implementations keep
/// a stack of per-depth summaries, e.g. the cumulative announcement
/// union), so evaluating a prefix of r rounds across a whole subtree costs
/// O(n) per node instead of O(n * r) per leaf.
///
/// Evaluators must tolerate pushes after kViolatedForever (the engine
/// keeps descending under non-prunable predicates); the verdict must then
/// remain exact for the deeper prefix.
class StepEvaluator {
 public:
  virtual ~StepEvaluator() = default;

  /// Resets to the empty pattern over `n` processes. `total_rounds` is the
  /// depth at which the enumeration will stop extending (the whole-pattern
  /// fallback uses it to know when a prefix is final); incremental
  /// implementations may ignore it.
  virtual void begin(int n, Round total_rounds) = 0;

  /// Extends the pattern by one round and reports the verdict for the
  /// extended prefix. `round` must be a legal RoundFaults over n processes
  /// (every D a proper subset of S); it is only valid for the duration of
  /// the call.
  virtual StepVerdict push_round(const RoundFaults& round) = 0;

  /// Word-path variant of push_round: `d[i]` is D(i,r).bits() for the
  /// same legal round over `n` processes (`n` must match begin()'s).
  /// Interchangeable with push_round call-for-call -- the two may be
  /// mixed on one evaluator and pop_round() retracts either. The default
  /// bridges by materializing ProcessSets; the zoo evaluators override
  /// it with *independently written* whole-word cores, so the
  /// differential suites compare two genuinely distinct evaluations of
  /// every predicate.
  virtual StepVerdict push_round_words(const std::uint64_t* d, int n);

  /// Retracts the most recently pushed round.
  virtual void pop_round() = 0;

  /// Appends a canonical fingerprint of the evaluator's current state to
  /// `out` and returns true, or returns false when the evaluator has no
  /// bounded canonical key (the default, inherited by the whole-pattern
  /// fallback, whose state is the entire pushed prefix).
  ///
  /// Contract (what the suffix-memoization engine relies on; see
  /// "Suffix memoization" in DESIGN.md):
  ///  * Canonical: two evaluators of the *same predicate* -- same class,
  ///    same construction parameters, begun with the same n -- that
  ///    append equal bytes behave identically under every future LIFO
  ///    push/pop sequence that never pops below the current depth.
  ///    Equal bytes must imply equal behaviour across instances, not
  ///    just within one instance.
  ///  * Keyability is structural: an evaluator either always returns
  ///    true or always returns false over its whole lifetime; callers
  ///    probe once after begin().
  ///  * On a false return the contents of `out` are unspecified.
  ///
  /// Implementations should canonicalize absorbing states (e.g. collapse
  /// every violated-forever state to one tag byte) so that behaviourally
  /// identical states share one memo entry.
  virtual bool state_bytes(std::vector<std::uint8_t>& out) const;

  /// Convenience wrapper over state_bytes: the full key from an empty
  /// buffer, or nullopt for keyless evaluators.
  std::optional<std::vector<std::uint8_t>> state_key() const;
};

/// An RRFD model, i.e. a predicate over fault patterns.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Short identifier, e.g. "sync-omission(f=2)".
  virtual std::string name() const = 0;

  /// One-line human description referencing the paper.
  virtual std::string description() const = 0;

  /// Does the full pattern satisfy the model?
  virtual bool holds(const FaultPattern& pattern) const = 0;

  /// True iff every prefix of `pattern` satisfies the model. For
  /// prefix-closed predicates (all the paper's models are) this equals
  /// holds(); the default implementation walks the rounds once through the
  /// incremental evaluator, so zoo predicates pay O(n) per round instead
  /// of re-evaluating every prefix from scratch, and non-prefix-closed
  /// custom predicates are still handled correctly (the whole-pattern
  /// fallback re-checks holds() at every depth).
  virtual bool holds_all_prefixes(const FaultPattern& pattern) const;

  /// Incremental evaluator for exhaustive enumeration. The default is a
  /// whole-pattern fallback that maintains a growing FaultPattern and
  /// calls holds() after every push — correct for any predicate, but
  /// without pruning power (see prunable()). Zoo predicates override this
  /// with true O(n)-per-round implementations.
  virtual std::unique_ptr<StepEvaluator> evaluator() const;

  /// True iff the predicate's violations are stable under extension: once
  /// a prefix violates it, every extension does too. This is what makes
  /// kViolatedForever a licence to prune an enumeration subtree. Every
  /// model in the paper's zoo has this property; the conservative default
  /// is false so that custom predicates (e.g. "holds iff exactly two
  /// rounds") are enumerated without unsound cuts.
  virtual bool prunable() const { return false; }

  /// True iff the predicate is invariant under renaming processes
  /// (simultaneously permuting observer indices and set members). Enables
  /// process-permutation symmetry reduction in the exhaustive engine. All
  /// zoo predicates are symmetric; the default is false because a custom
  /// predicate may single out specific identifiers.
  virtual bool symmetric() const { return false; }
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// Conjunction of predicates. Most of the paper's models are built by
/// composing primitive constraints (e.g. item 2 = item 1 /\ monotonicity).
class AndPredicate final : public Predicate {
 public:
  AndPredicate(std::string name, std::vector<PredicatePtr> parts);

  std::string name() const override { return name_; }
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;
  std::unique_ptr<StepEvaluator> evaluator() const override;
  bool prunable() const override;
  bool symmetric() const override;

  const std::vector<PredicatePtr>& parts() const { return parts_; }

 private:
  std::string name_;
  std::vector<PredicatePtr> parts_;
};

/// Convenience factory for AndPredicate.
PredicatePtr all_of(std::string name, std::vector<PredicatePtr> parts);

}  // namespace rrfd::core
