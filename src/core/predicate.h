// Predicate: what *is* an RRFD model.
//
// The paper defines a model as a predicate over the family of sets
// {D(i,r)}. A Predicate evaluates a FaultPattern; an adversary is valid
// for a model iff every pattern it can emit satisfies the model's
// predicate. Submodel relations (Section 2: "A is a submodel of B iff
// P_A => P_B") are checked with implies_on_samples() and, for small
// systems, by exhaustive enumeration in the tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/fault_pattern.h"

namespace rrfd::core {

/// An RRFD model, i.e. a predicate over fault patterns.
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Short identifier, e.g. "sync-omission(f=2)".
  virtual std::string name() const = 0;

  /// One-line human description referencing the paper.
  virtual std::string description() const = 0;

  /// Does the full pattern satisfy the model?
  virtual bool holds(const FaultPattern& pattern) const = 0;

  /// True iff every prefix of `pattern` satisfies the model. For
  /// prefix-closed predicates (all the paper's models are) this equals
  /// holds(); the default implementation checks every prefix explicitly so
  /// non-prefix-closed custom predicates are still handled correctly.
  virtual bool holds_all_prefixes(const FaultPattern& pattern) const;
};

using PredicatePtr = std::shared_ptr<const Predicate>;

/// Conjunction of predicates. Most of the paper's models are built by
/// composing primitive constraints (e.g. item 2 = item 1 /\ monotonicity).
class AndPredicate final : public Predicate {
 public:
  AndPredicate(std::string name, std::vector<PredicatePtr> parts);

  std::string name() const override { return name_; }
  std::string description() const override;
  bool holds(const FaultPattern& pattern) const override;

  const std::vector<PredicatePtr>& parts() const { return parts_; }

 private:
  std::string name_;
  std::vector<PredicatePtr> parts_;
};

/// Convenience factory for AndPredicate.
PredicatePtr all_of(std::string name, std::vector<PredicatePtr> parts);

}  // namespace rrfd::core
