#include "core/adversaries.h"

#include "util/str.h"

namespace rrfd::core {
namespace {

/// Random subset of `candidates` with each member kept with probability p.
ProcessSet random_subset(Rng& rng, const ProcessSet& candidates, double p) {
  ProcessSet out(candidates.n());
  for (ProcId q : candidates.members()) {
    if (rng.chance(p)) out.add(q);
  }
  return out;
}

/// Random subset of `candidates` of size exactly `size`.
ProcessSet random_subset_of_size(Rng& rng, const ProcessSet& candidates,
                                 int size) {
  RRFD_REQUIRE(size <= candidates.size());
  std::vector<ProcId> pool = candidates.members();
  rng.shuffle(pool);
  ProcessSet out(candidates.n());
  for (int i = 0; i < size; ++i) out.add(pool[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace

// --------------------------------------------------------------------------
// ScriptedAdversary
// --------------------------------------------------------------------------

ScriptedAdversary::ScriptedAdversary(FaultPattern pattern)
    : pattern_(std::move(pattern)) {}

RoundFaults ScriptedAdversary::next_round() {
  ++round_;
  if (round_ <= pattern_.rounds()) return pattern_.round(round_);
  return uniform_round(pattern_.n(), ProcessSet::none(pattern_.n()));
}

void ScriptedAdversary::next_round_words(std::uint64_t* out) {
  ++round_;
  const int count = pattern_.n();
  if (round_ <= pattern_.rounds()) {
    for (ProcId i = 0; i < count; ++i) out[i] = pattern_.d(i, round_).bits();
    return;
  }
  for (ProcId i = 0; i < count; ++i) out[i] = 0;  // benign tail
}

// --------------------------------------------------------------------------
// BenignAdversary
// --------------------------------------------------------------------------

BenignAdversary::BenignAdversary(int n) : n_(n) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
}

RoundFaults BenignAdversary::next_round() {
  return uniform_round(n_, ProcessSet::none(n_));
}

void BenignAdversary::next_round_words(std::uint64_t* out) {
  for (ProcId i = 0; i < n_; ++i) out[i] = 0;
}

// --------------------------------------------------------------------------
// OmissionAdversary
// --------------------------------------------------------------------------

OmissionAdversary::OmissionAdversary(int n, int f, std::uint64_t seed,
                                     double miss_prob)
    : n_(n),
      f_(f),
      seed_(seed),
      miss_prob_(miss_prob),
      pool_(n),
      rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
  pool_ = random_subset_of_size(rng_, ProcessSet::all(n_), f_);
}

std::string OmissionAdversary::name() const {
  return cat("omission(f=", f_, ")");
}

void OmissionAdversary::reset() {
  rng_.reseed(seed_);
  pool_ = random_subset_of_size(rng_, ProcessSet::all(n_), f_);
}

RoundFaults OmissionAdversary::next_round() {
  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n_));
  for (ProcId i = 0; i < n_; ++i) {
    round.push_back(random_subset(rng_, pool_.without(i), miss_prob_));
  }
  return round;
}

// --------------------------------------------------------------------------
// CrashAdversary
// --------------------------------------------------------------------------

CrashAdversary::CrashAdversary(int n, int f, std::uint64_t seed,
                               double crash_prob)
    : n_(n),
      f_(f),
      seed_(seed),
      crash_prob_(crash_prob),
      rng_(seed),
      announced_(n) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
}

std::string CrashAdversary::name() const { return cat("crash(f=", f_, ")"); }

void CrashAdversary::reset() {
  rng_.reseed(seed_);
  announced_ = ProcessSet::none(n_);
}

RoundFaults CrashAdversary::next_round() {
  // Pick the processes crashing this round (within the remaining budget).
  ProcessSet newly(n_);
  for (ProcId p : announced_.complement().members()) {
    if (announced_.size() + newly.size() >= f_) break;
    if (rng_.chance(crash_prob_)) newly.add(p);
  }

  // A crashing process is missed by a random subset of the *other*
  // processes in its crash round (partial announcement -- the essence of a
  // crash in a round-based system), and by everyone afterwards.
  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n_));
  std::vector<ProcessSet> missed_by;  // per new crasher, who misses it
  std::vector<ProcId> crashers = newly.members();
  missed_by.reserve(crashers.size());
  for (ProcId c : crashers) {
    missed_by.push_back(random_subset(rng_, ProcessSet::all(n_).without(c),
                                      /*p=*/0.6));
  }
  for (ProcId i = 0; i < n_; ++i) {
    ProcessSet d = announced_;
    for (std::size_t idx = 0; idx < crashers.size(); ++idx) {
      if (missed_by[idx].contains(i)) d.add(crashers[idx]);
    }
    round.push_back(d);
  }

  // Only crashers actually missed by somebody become announced; the others
  // effectively crash in a later round.
  for (std::size_t idx = 0; idx < crashers.size(); ++idx) {
    if (!missed_by[idx].empty()) announced_.add(crashers[idx]);
  }
  return round;
}

// --------------------------------------------------------------------------
// AsyncAdversary
// --------------------------------------------------------------------------

AsyncAdversary::AsyncAdversary(int n, int f, std::uint64_t seed)
    : n_(n), f_(f), seed_(seed), rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
}

std::string AsyncAdversary::name() const { return cat("async(f=", f_, ")"); }

void AsyncAdversary::reset() { rng_.reseed(seed_); }

RoundFaults AsyncAdversary::next_round() {
  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n_));
  for (ProcId i = 0; i < n_; ++i) {
    const int size = static_cast<int>(rng_.below(static_cast<std::uint64_t>(f_) + 1));
    round.push_back(random_subset_of_size(rng_, ProcessSet::all(n_), size));
    (void)i;
  }
  return round;
}

// --------------------------------------------------------------------------
// SwmrAdversary
// --------------------------------------------------------------------------

SwmrAdversary::SwmrAdversary(int n, int f, std::uint64_t seed)
    : n_(n), f_(f), seed_(seed), rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
}

std::string SwmrAdversary::name() const { return cat("swmr(f=", f_, ")"); }

void SwmrAdversary::reset() { rng_.reseed(seed_); }

RoundFaults SwmrAdversary::next_round() {
  // The "first writer": announced to nobody this round (predicate 4).
  const ProcId heard = static_cast<ProcId>(rng_.below(static_cast<std::uint64_t>(n_)));
  const ProcessSet candidates = ProcessSet::all(n_).without(heard);
  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n_));
  for (ProcId i = 0; i < n_; ++i) {
    const int size = static_cast<int>(rng_.below(static_cast<std::uint64_t>(f_) + 1));
    round.push_back(
        random_subset_of_size(rng_, candidates, std::min(size, candidates.size())));
    (void)i;
  }
  return round;
}

// --------------------------------------------------------------------------
// SnapshotAdversary
// --------------------------------------------------------------------------

SnapshotAdversary::SnapshotAdversary(int n, int f, std::uint64_t seed)
    : n_(n), f_(f), seed_(seed), rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(0 <= f && f < n);
}

std::string SnapshotAdversary::name() const {
  return cat("snapshot(f=", f_, ")");
}

void SnapshotAdversary::reset() { rng_.reseed(seed_); }

RoundFaults SnapshotAdversary::next_round() {
  // Random ordered partition B_1,...,B_m with |B_1| >= n - f so that no
  // process misses more than f others.
  std::vector<int> order = rng_.permutation(n_);
  const int first_block =
      n_ - f_ + static_cast<int>(rng_.below(static_cast<std::uint64_t>(f_) + 1));

  RoundFaults round(static_cast<std::size_t>(n_), ProcessSet::none(n_));
  ProcessSet prefix(n_);
  int taken = 0;
  std::vector<ProcId> block;
  auto flush_block = [&] {
    for (ProcId p : block) prefix.add(p);
    for (ProcId p : block) {
      round[static_cast<std::size_t>(p)] = prefix.complement();
    }
    block.clear();
  };
  for (int idx = 0; idx < n_; ++idx) {
    block.push_back(order[static_cast<std::size_t>(idx)]);
    ++taken;
    const bool boundary =
        taken >= first_block && (taken == first_block || rng_.chance(0.5));
    if (boundary || idx == n_ - 1) flush_block();
  }
  return round;
}

// --------------------------------------------------------------------------
// KUncertaintyAdversary
// --------------------------------------------------------------------------

KUncertaintyAdversary::KUncertaintyAdversary(int n, int k, std::uint64_t seed)
    : n_(n), k_(k), seed_(seed), rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(1 <= k && k <= n);
}

std::string KUncertaintyAdversary::name() const {
  return cat("k-uncertainty(k=", k_, ")");
}

void KUncertaintyAdversary::reset() { rng_.reseed(seed_); }

RoundFaults KUncertaintyAdversary::next_round() {
  // Uncertainty set U with |U| < k; base set B announced to everyone,
  // disjoint from U, with |B u U| < n so no D(i,r) can be the full set.
  const int u_size = static_cast<int>(rng_.below(static_cast<std::uint64_t>(k_)));
  const ProcessSet u =
      random_subset_of_size(rng_, ProcessSet::all(n_), u_size);
  const ProcessSet rest = u.complement();
  const int b_max = n_ - 1 - u_size;
  const int b_size =
      static_cast<int>(rng_.below(static_cast<std::uint64_t>(b_max) + 1));
  const ProcessSet base = random_subset_of_size(rng_, rest, b_size);

  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n_));
  for (ProcId i = 0; i < n_; ++i) {
    round.push_back(base | random_subset(rng_, u, 0.5));
    (void)i;
  }
  return round;
}

// --------------------------------------------------------------------------
// ImmortalAdversary
// --------------------------------------------------------------------------

ImmortalAdversary::ImmortalAdversary(int n, std::uint64_t seed, ProcId immortal)
    : n_(n), seed_(seed), immortal_(immortal), auto_immortal_(immortal < 0),
      rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  if (auto_immortal_) {
    immortal_ = static_cast<ProcId>(rng_.below(static_cast<std::uint64_t>(n_)));
  }
  RRFD_REQUIRE(0 <= immortal_ && immortal_ < n_);
}

std::string ImmortalAdversary::name() const {
  return cat("immortal(p=", immortal_, ")");
}

void ImmortalAdversary::reset() {
  rng_.reseed(seed_);
  // An auto-picked immortal consumed one draw at construction; replay it,
  // or the post-reset stream is offset by one draw relative to the first
  // run (the pick itself is the same -- same seed, same draw).
  if (auto_immortal_) {
    immortal_ = static_cast<ProcId>(rng_.below(static_cast<std::uint64_t>(n_)));
  }
}

RoundFaults ImmortalAdversary::next_round() {
  const ProcessSet candidates = ProcessSet::all(n_).without(immortal_);
  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n_));
  for (ProcId i = 0; i < n_; ++i) {
    round.push_back(random_subset(rng_, candidates, 0.5));
    (void)i;
  }
  return round;
}

// --------------------------------------------------------------------------
// EqualAdversary
// --------------------------------------------------------------------------

EqualAdversary::EqualAdversary(int n, std::uint64_t seed, double miss_prob)
    : n_(n), seed_(seed), miss_prob_(miss_prob), rng_(seed) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
}

void EqualAdversary::reset() { rng_.reseed(seed_); }

RoundFaults EqualAdversary::next_round() {
  ProcessSet d = random_subset(rng_, ProcessSet::all(n_), miss_prob_);
  if (d.full()) d.remove(static_cast<ProcId>(rng_.below(static_cast<std::uint64_t>(n_))));
  return uniform_round(n_, d);
}

// --------------------------------------------------------------------------
// ChainAdversary
// --------------------------------------------------------------------------

ChainAdversary::ChainAdversary(int n, int f, int k)
    : n_(n), f_(f), k_(k), rounds_(f / k) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(1 <= k && k <= f);
  RRFD_REQUIRE_MSG(n >= k_ * rounds_ + k_ + 1,
                   "need n >= k*floor(f/k) + k + 1 for the chain layout");
}

std::string ChainAdversary::name() const {
  return cat("chain(f=", f_, ",k=", k_, ",R=", rounds_, ")");
}

ProcId ChainAdversary::crasher(int m, Round j) const {
  RRFD_REQUIRE(0 <= m && m < k_);
  RRFD_REQUIRE(1 <= j && j <= rounds_);
  return (j - 1) * k_ + m;
}

std::vector<int> ChainAdversary::violating_inputs() const {
  std::vector<int> inputs(static_cast<std::size_t>(n_), k_);
  for (int m = 0; m < k_; ++m) inputs[static_cast<std::size_t>(m)] = m;
  return inputs;
}

RoundFaults ChainAdversary::next_round() {
  ++round_;
  // Everyone crashed before this round is announced to all (including to
  // itself -- it has halted, which the crash predicate exempts).
  ProcessSet announced(n_);
  for (Round j = 1; j < round_ && j <= rounds_; ++j) {
    for (int m = 0; m < k_; ++m) announced.add(crasher(m, j));
  }

  RoundFaults round(static_cast<std::size_t>(n_), announced);
  if (round_ <= rounds_) {
    for (int m = 0; m < k_; ++m) {
      const ProcId c = crasher(m, round_);
      const ProcId successor =
          (round_ < rounds_) ? crasher(m, round_ + 1) : terminal(m);
      for (ProcId i = 0; i < n_; ++i) {
        if (i != successor && i != c) {
          round[static_cast<std::size_t>(i)].add(c);
        }
      }
    }
  }
  return round;
}

}  // namespace rrfd::core
