#include "core/knowledge.h"

namespace rrfd::core {

KnowledgeTracker::KnowledgeTracker(int n) : n_(n) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  know_.reserve(static_cast<std::size_t>(n));
  for (ProcId i = 0; i < n; ++i) know_.push_back(ProcessSet::single(n, i));
}

void KnowledgeTracker::step(const RoundFaults& round) {
  RRFD_REQUIRE(static_cast<int>(round.size()) == n_);
  std::vector<ProcessSet> next = know_;
  for (ProcId i = 0; i < n_; ++i) {
    const ProcessSet heard = round[static_cast<std::size_t>(i)].complement();
    for (ProcId j : heard.members()) {
      next[static_cast<std::size_t>(i)] |= know_[static_cast<std::size_t>(j)];
    }
  }
  know_ = std::move(next);
  ++rounds_;
}

void KnowledgeTracker::run(const FaultPattern& pattern) {
  for (Round r = 1; r <= pattern.rounds(); ++r) step(pattern.round(r));
}

const ProcessSet& KnowledgeTracker::known_by(ProcId i) const {
  RRFD_REQUIRE(0 <= i && i < n_);
  return know_[static_cast<std::size_t>(i)];
}

ProcessSet KnowledgeTracker::known_to_all() const {
  ProcessSet common = ProcessSet::all(n_);
  for (const ProcessSet& k : know_) common &= k;
  return common;
}

Round rounds_until_common_knowledge(const FaultPattern& pattern) {
  KnowledgeTracker tracker(pattern.n());
  if (!tracker.known_to_all().empty()) return 0;
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    tracker.step(pattern.round(r));
    if (!tracker.known_to_all().empty()) return r;
  }
  return -1;
}

}  // namespace rrfd::core
