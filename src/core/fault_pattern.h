// Fault patterns: the complete record of what an RRFD told every process.
//
// An execution of an RRFD system is characterized (apart from the
// algorithm's own messages) by the family of sets D(i,r). A FaultPattern
// stores that family for rounds 1..R; predicates (core/predicates.h) are
// evaluated against it, adversaries (core/adversaries.h) produce it round
// by round, and the engine (core/engine.h) records it as it drives
// processes.
#pragma once

#include <string>
#include <vector>

#include "core/process_set.h"
#include "core/types.h"

namespace rrfd::core {

/// One round's fault announcements: faults[i] == D(i, r).
/// Invariant: all entries share the same system size n.
using RoundFaults = std::vector<ProcessSet>;

/// Union over processes of D(i, r) for a single round.
ProcessSet union_over(const RoundFaults& round);

/// Intersection over processes of D(i, r) for a single round.
ProcessSet intersection_over(const RoundFaults& round);

/// A RoundFaults where every process is told the same set `d`.
RoundFaults uniform_round(int n, const ProcessSet& d);

/// The full family {D(i,r)} for rounds 1..size().
class FaultPattern {
 public:
  explicit FaultPattern(int n) : n_(n) {
    RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  }

  int n() const { return n_; }

  /// Number of recorded rounds.
  int rounds() const { return static_cast<int>(rounds_.size()); }

  /// Appends round `rounds()+1`. Every D(i,r) must be over n processes and
  /// the paper's universal constraint D(i,r) != S must hold ("not all
  /// processes can be late").
  void append(RoundFaults round);

  /// Removes the most recently appended round (LIFO). Backtracking
  /// counterpart of append(); the whole-pattern evaluator fallback in
  /// core/predicate.cpp uses it to retract DFS extensions in place.
  void pop_round() {
    RRFD_REQUIRE(!rounds_.empty());
    rounds_.pop_back();
  }

  /// D(i, r); r is 1-based as in the paper.
  const ProcessSet& d(ProcId i, Round r) const {
    RRFD_REQUIRE(1 <= r && r <= rounds());
    RRFD_REQUIRE(0 <= i && i < n_);
    return rounds_[static_cast<std::size_t>(r - 1)]
                  [static_cast<std::size_t>(i)];
  }

  /// All announcements of round r.
  const RoundFaults& round(Round r) const {
    RRFD_REQUIRE(1 <= r && r <= rounds());
    return rounds_[static_cast<std::size_t>(r - 1)];
  }

  /// Union over processes of D(i, r).
  ProcessSet round_union(Round r) const { return union_over(round(r)); }

  /// Intersection over processes of D(i, r).
  ProcessSet round_intersection(Round r) const {
    return intersection_over(round(r));
  }

  /// Union of all announcements in rounds 1..r (r defaults to all rounds).
  /// This is the paper's cumulative fault set U_{r>0} U_{p_i} D(i,r).
  ProcessSet cumulative_union(Round up_to = -1) const;

  /// Truncates to the first r rounds.
  FaultPattern prefix(Round r) const;

  /// Multi-line rendering for diagnostics.
  std::string to_string() const;

  /// Patterns are equal iff they describe the same {D(i,r)} family over
  /// the same system (used by replay verification).
  friend bool operator==(const FaultPattern& a, const FaultPattern& b) {
    return a.n_ == b.n_ && a.rounds_ == b.rounds_;
  }
  friend bool operator!=(const FaultPattern& a, const FaultPattern& b) {
    return !(a == b);
  }

 private:
  // The SoA word arena converts into rounds_ directly: its words were
  // validated (mask within S, D != S) when they were recorded, so the
  // conversion skips append()'s per-set re-checks (core/words.h).
  friend class MaskRounds;

  int n_;
  std::vector<RoundFaults> rounds_;
};

}  // namespace rrfd::core
