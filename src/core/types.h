// Fundamental identifier types shared across the RRFD library.
#pragma once

namespace rrfd::core {

/// Index of a process in the system S = {0, 1, ..., n-1}.
using ProcId = int;

/// Round number. The paper numbers rounds from 1; the library follows that
/// convention everywhere a Round is exposed (round 0 is "before the first
/// exchange", where inputs live).
using Round = int;

/// Maximum number of processes supported by ProcessSet (one 64-bit word).
inline constexpr int kMaxProcesses = 64;

}  // namespace rrfd::core
