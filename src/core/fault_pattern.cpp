#include "core/fault_pattern.h"

#include <sstream>

namespace rrfd::core {

ProcessSet union_over(const RoundFaults& round) {
  RRFD_REQUIRE(!round.empty());
  ProcessSet u(round.front().n());
  for (const ProcessSet& d : round) u |= d;
  return u;
}

ProcessSet intersection_over(const RoundFaults& round) {
  RRFD_REQUIRE(!round.empty());
  ProcessSet x = ProcessSet::all(round.front().n());
  for (const ProcessSet& d : round) x &= d;
  return x;
}

RoundFaults uniform_round(int n, const ProcessSet& d) {
  RRFD_REQUIRE(d.n() == n);
  return RoundFaults(static_cast<std::size_t>(n), d);
}

void FaultPattern::append(RoundFaults round) {
  RRFD_REQUIRE(static_cast<int>(round.size()) == n_);
  for (const ProcessSet& d : round) {
    RRFD_REQUIRE(d.n() == n_);
    RRFD_REQUIRE_MSG(!d.full(),
                     "D(i,r) = S is forbidden: not all processes can be late");
  }
  rounds_.push_back(std::move(round));
}

ProcessSet FaultPattern::cumulative_union(Round up_to) const {
  if (up_to < 0) up_to = rounds();
  RRFD_REQUIRE(up_to <= rounds());
  ProcessSet u(n_);
  for (Round r = 1; r <= up_to; ++r) u |= round_union(r);
  return u;
}

FaultPattern FaultPattern::prefix(Round r) const {
  RRFD_REQUIRE(0 <= r && r <= rounds());
  FaultPattern p(n_);
  for (Round q = 1; q <= r; ++q) p.append(round(q));
  return p;
}

std::string FaultPattern::to_string() const {
  std::ostringstream os;
  for (Round r = 1; r <= rounds(); ++r) {
    os << "round " << r << ":";
    for (ProcId i = 0; i < n_; ++i) {
      os << " D(" << i << ")=" << d(i, r).to_string();
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace rrfd::core
