// Adversary: the operational half of an RRFD model.
//
// The paper remarks that the round-by-round fault detector "may be
// considered in fact to be an adversary": it chooses, within the model's
// predicate, which announcements each process sees. An Adversary produces
// the sets D(i,r) round by round; the engine feeds them to the algorithm
// under test. Concrete adversaries (core/adversaries.h) exist for every
// model in the zoo, plus scripted and worst-case constructions used by
// the lower-bound experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/fault_pattern.h"

namespace rrfd::core {

/// Produces one RoundFaults per call. Stateful: crash adversaries must
/// remember who is already announced; reset() rewinds to round 1 with the
/// same seed so a run can be replayed exactly.
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// System size.
  virtual int n() const = 0;

  /// Short identifier for traces and bench labels.
  virtual std::string name() const = 0;

  /// Announcements for the next round (first call = round 1).
  virtual RoundFaults next_round() = 0;

  /// Word form of next_round() for the engine's fast path: writes
  /// D(i, next round).bits() into out[0..n()). The default bridges
  /// through next_round(), so the two forms always advance the adversary
  /// identically; overrides (BenignAdversary, ScriptedAdversary) must
  /// consume exactly the same randomness as their next_round() so a run
  /// replays bit-identically whichever form the engine calls.
  virtual void next_round_words(std::uint64_t* out);

  /// Rewinds to round 1; the replayed stream is identical.
  virtual void reset() = 0;
};

using AdversaryPtr = std::unique_ptr<Adversary>;

/// Runs an adversary for `rounds` rounds and returns the pattern it emits.
/// Useful for predicate checks that don't need an algorithm in the loop.
FaultPattern record_pattern(Adversary& adversary, Round rounds);

}  // namespace rrfd::core
