#include "core/predicate.h"

#include <sstream>

namespace rrfd::core {

bool Predicate::holds_all_prefixes(const FaultPattern& pattern) const {
  for (Round r = 0; r <= pattern.rounds(); ++r) {
    if (!holds(pattern.prefix(r))) return false;
  }
  return true;
}

AndPredicate::AndPredicate(std::string name, std::vector<PredicatePtr> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {
  RRFD_REQUIRE(!parts_.empty());
  for (const auto& p : parts_) RRFD_REQUIRE(p != nullptr);
}

std::string AndPredicate::description() const {
  std::ostringstream os;
  os << "conjunction of:";
  for (const auto& p : parts_) os << " [" << p->name() << "]";
  return os.str();
}

bool AndPredicate::holds(const FaultPattern& pattern) const {
  for (const auto& p : parts_) {
    if (!p->holds(pattern)) return false;
  }
  return true;
}

PredicatePtr all_of(std::string name, std::vector<PredicatePtr> parts) {
  return std::make_shared<AndPredicate>(std::move(name), std::move(parts));
}

}  // namespace rrfd::core
