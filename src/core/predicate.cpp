#include "core/predicate.h"

#include <sstream>
#include <utility>

namespace rrfd::core {
namespace {

/// Default evaluator: re-checks holds() on the growing prefix after every
/// push. Correct for *any* predicate — kViolatedForever then only states
/// that the current prefix fails (the engine prunes on it solely when the
/// predicate declares prunable()), and kSatisfiedForever is never
/// claimed. Costs one holds() per round, which is what a predicate that
/// exposes no incremental structure has to pay.
class WholePatternEvaluator final : public StepEvaluator {
 public:
  explicit WholePatternEvaluator(const Predicate& pred)
      : pred_(pred), pattern_(1) {}

  void begin(int n, Round /*total_rounds*/) override {
    pattern_ = FaultPattern(n);
  }

  StepVerdict push_round(const RoundFaults& round) override {
    pattern_.append(round);
    return pred_.holds(pattern_) ? StepVerdict::kSatisfiedSoFar
                                 : StepVerdict::kViolatedForever;
  }

  void pop_round() override { pattern_.pop_round(); }

 private:
  const Predicate& pred_;
  FaultPattern pattern_;
};

/// Conjunction evaluator: verdicts combine as AND. A child that reports
/// kSatisfiedForever is retired (no further pushes) until the enumeration
/// backtracks above the depth where it made that promise.
class AndEvaluator final : public StepEvaluator {
 public:
  explicit AndEvaluator(const std::vector<PredicatePtr>& parts) {
    children_.reserve(parts.size());
    for (const auto& p : parts) children_.push_back({p->evaluator(), -1});
  }

  void begin(int n, Round total_rounds) override {
    depth_ = 0;
    for (Child& c : children_) {
      c.eval->begin(n, total_rounds);
      c.forever_at = -1;
    }
  }

  StepVerdict push_round(const RoundFaults& round) override {
    return push_into_children(
        [&round](StepEvaluator& e) { return e.push_round(round); });
  }

  StepVerdict push_round_words(const std::uint64_t* d, int n) override {
    return push_into_children(
        [d, n](StepEvaluator& e) { return e.push_round_words(d, n); });
  }

  bool state_bytes(std::vector<std::uint8_t>& out) const override {
    // A retired child (kSatisfiedForever promise in force) is absorbing:
    // it sees no pushes below this depth and always counts as satisfied,
    // so one tag byte stands in for whatever state it froze at. Live
    // children contribute their own key, length-prefixed because child
    // keys vary in length and concatenation must stay unambiguous.
    for (const Child& c : children_) {
      if (c.forever_at >= 0) {
        statekey::append_u8(out, 0xFF);
        continue;
      }
      statekey::append_u8(out, 0x01);
      const std::size_t pos = statekey::begin_length_prefix(out);
      if (!c.eval->state_bytes(out)) return false;
      statekey::end_length_prefix(out, pos);
    }
    return true;
  }

  void pop_round() override {
    for (Child& c : children_) {
      if (c.forever_at < 0) {
        c.eval->pop_round();
      } else if (c.forever_at == depth_) {
        c.eval->pop_round();  // the promise was made at this depth
        c.forever_at = -1;
      }
      // forever_at < depth_: the child saw no push at this depth.
    }
    --depth_;
  }

 private:
  template <typename Push>
  StepVerdict push_into_children(const Push& push) {
    ++depth_;
    bool violated = false;
    bool all_forever = true;
    for (Child& c : children_) {
      if (c.forever_at >= 0) continue;  // holds for every extension
      const StepVerdict v = push(*c.eval);
      if (v == StepVerdict::kViolatedForever) {
        violated = true;
        all_forever = false;
      } else if (v == StepVerdict::kSatisfiedForever) {
        c.forever_at = depth_;
      } else {
        all_forever = false;
      }
    }
    if (violated) return StepVerdict::kViolatedForever;
    return all_forever ? StepVerdict::kSatisfiedForever
                       : StepVerdict::kSatisfiedSoFar;
  }

  struct Child {
    std::unique_ptr<StepEvaluator> eval;
    Round forever_at;  ///< depth of a kSatisfiedForever verdict; -1 if none
  };
  std::vector<Child> children_;
  Round depth_ = 0;
};

}  // namespace

bool StepEvaluator::state_bytes(std::vector<std::uint8_t>& /*out*/) const {
  return false;  // no bounded canonical key unless an override says so
}

std::optional<std::vector<std::uint8_t>> StepEvaluator::state_key() const {
  std::vector<std::uint8_t> out;
  if (!state_bytes(out)) return std::nullopt;
  return out;
}

StepVerdict StepEvaluator::push_round_words(const std::uint64_t* d, int n) {
  RoundFaults round;
  round.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    round.push_back(ProcessSet::from_bits(n, d[i]));
  }
  return push_round(round);
}

bool Predicate::holds_all_prefixes(const FaultPattern& pattern) const {
  if (!holds(FaultPattern(pattern.n()))) return false;  // the empty prefix
  const auto eval = evaluator();
  eval->begin(pattern.n(), pattern.rounds());
  for (Round r = 1; r <= pattern.rounds(); ++r) {
    if (eval->push_round(pattern.round(r)) == StepVerdict::kViolatedForever) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<StepEvaluator> Predicate::evaluator() const {
  return std::make_unique<WholePatternEvaluator>(*this);
}

AndPredicate::AndPredicate(std::string name, std::vector<PredicatePtr> parts)
    : name_(std::move(name)), parts_(std::move(parts)) {
  RRFD_REQUIRE(!parts_.empty());
  for (const auto& p : parts_) RRFD_REQUIRE(p != nullptr);
}

std::string AndPredicate::description() const {
  std::ostringstream os;
  os << "conjunction of:";
  for (const auto& p : parts_) os << " [" << p->name() << "]";
  return os.str();
}

bool AndPredicate::holds(const FaultPattern& pattern) const {
  for (const auto& p : parts_) {
    if (!p->holds(pattern)) return false;
  }
  return true;
}

std::unique_ptr<StepEvaluator> AndPredicate::evaluator() const {
  return std::make_unique<AndEvaluator>(parts_);
}

bool AndPredicate::prunable() const {
  // The conjunction's violations are extension-stable iff every part's
  // are: a non-prunable part could recover and take the AND with it.
  for (const auto& p : parts_) {
    if (!p->prunable()) return false;
  }
  return true;
}

bool AndPredicate::symmetric() const {
  for (const auto& p : parts_) {
    if (!p->symmetric()) return false;
  }
  return true;
}

PredicatePtr all_of(std::string name, std::vector<PredicatePtr> parts) {
  return std::make_shared<AndPredicate>(std::move(name), std::move(parts));
}

}  // namespace rrfd::core
