// Zero-copy delivery for the round engine.
//
// Each round the engine collects every process's emit(r) into one shared
// `emitted` array and hands each recipient a DeliveryView: a non-owning
// view pairing a pointer into that array with the recipient's fault mask
// D(i,r). Delivery under communication closure is pure set algebra --
// p_i receives m_{j,r} iff j is not in D(i,r) -- so the view never copies
// a message: membership is one AND against the delivered mask and
// iteration is a bit-scan. The full contract lives in DESIGN.md
// ("Delivery contract: DeliveryView"); the short form:
//
//   * senders() is exactly S \ D(i,r), including the recipient's own
//     message (self-delivery drops iff i in D(i,r)).
//   * view[j] is valid only for j in senders(); debug builds assert.
//     get(j) returns nullptr for dropped senders. faults() == d.
//   * The view is valid only for the duration of the absorb() call --
//     the engine overwrites the underlying buffer next round.
#pragma once

#include "core/process_set.h"
#include "core/types.h"
#include "util/check.h"

namespace rrfd::core {

/// Non-owning per-recipient view over the round's shared emit buffer.
/// `Message` is the algorithm's round message type (see RoundProcess).
template <typename Message>
class DeliveryView {
 public:
  /// `emitted` must point at n() messages indexed by sender; `d` is the
  /// recipient's announcement set D(i,r). Both must outlive the view.
  DeliveryView(const Message* emitted, const ProcessSet& d)
      : emitted_(emitted), delivered_(d.complement()) {
    RRFD_ASSERT(emitted != nullptr);
  }

  /// System size.
  int n() const { return delivered_.n(); }

  /// The delivered senders S \ D(i,r), in one word.
  const ProcessSet& senders() const { return delivered_; }

  /// The announcement set D(i,r) this view was built from.
  ProcessSet faults() const { return delivered_.complement(); }

  /// Was j's round message delivered? One AND.
  bool has(ProcId j) const { return delivered_.contains(j); }

  /// Message from sender j; valid only for j in senders().
  const Message& operator[](ProcId j) const {
    RRFD_ASSERT(has(j));
    return emitted_[j];
  }

  /// Message from sender j, or nullptr if j was dropped this round.
  const Message* get(ProcId j) const {
    return has(j) ? &emitted_[j] : nullptr;
  }

 private:
  const Message* emitted_;
  ProcessSet delivered_;  // S \ D(i,r)
};

}  // namespace rrfd::core
