// Knowledge propagation over fault patterns.
//
// Running the full-information protocol, what matters for most arguments
// is *whose round-0 input a process has (transitively) learned*. The
// tracker maintains know(i) = the set of processes whose inputs p_i
// knows, updated per round by know(i) |= U_{j not in D(i,r)} know(j).
//
// This is the machinery behind the item-4 discussion: under the
// no-mutual-miss predicate, if after r rounds nobody is known to all, the
// "does not know" relation contains a cycle of length > r, so after n
// rounds some process is known by all. The paper conjectures 2 rounds
// suffice; bench_knowledge_cycle probes that conjecture.
#pragma once

#include <vector>

#include "core/fault_pattern.h"

namespace rrfd::core {

/// Tracks per-process input knowledge round by round.
class KnowledgeTracker {
 public:
  explicit KnowledgeTracker(int n);

  int n() const { return n_; }

  /// Applies one round of announcements.
  void step(const RoundFaults& round);

  /// Applies every round of a pattern.
  void run(const FaultPattern& pattern);

  /// know(i): processes whose inputs p_i currently knows.
  const ProcessSet& known_by(ProcId i) const;

  /// Processes whose input is known to every process.
  ProcessSet known_to_all() const;

  /// Processes whose input p_i does NOT know (the "does not know"
  /// out-neighbourhood used in the cycle argument).
  ProcessSet unknown_by(ProcId i) const { return known_by(i).complement(); }

  /// Rounds applied so far.
  Round rounds() const { return rounds_; }

 private:
  int n_;
  Round rounds_ = 0;
  std::vector<ProcessSet> know_;
};

/// Convenience: rounds (of the given pattern, in order) until some input is
/// known to all; returns -1 if the pattern ends first.
Round rounds_until_common_knowledge(const FaultPattern& pattern);

}  // namespace rrfd::core
