#include "core/submodel.h"

#include <vector>

#include "util/check.h"

namespace rrfd::core {
namespace {

/// Odometer over the pattern space: each "digit" is one D(i,r), ranging
/// over masks 0 .. 2^n - 2 (the full set is structurally excluded).
class PatternOdometer {
 public:
  PatternOdometer(int n, Round rounds)
      : n_(n),
        digits_(static_cast<std::size_t>(n) * static_cast<std::size_t>(rounds),
                0),
        max_mask_((n == kMaxProcesses
                       ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << n) - 1)) -
                  1) {}

  FaultPattern current() const {
    FaultPattern p(n_);
    const int rounds = static_cast<int>(digits_.size()) / n_;
    std::size_t idx = 0;
    for (Round r = 0; r < rounds; ++r) {
      RoundFaults round;
      round.reserve(static_cast<std::size_t>(n_));
      for (ProcId i = 0; i < n_; ++i) {
        round.push_back(ProcessSet::from_bits(n_, digits_[idx++]));
      }
      p.append(std::move(round));
    }
    return p;
  }

  /// Advances to the next pattern; false when wrapped around.
  bool advance() {
    for (std::size_t d = 0; d < digits_.size(); ++d) {
      if (digits_[d] < max_mask_) {
        ++digits_[d];
        return true;
      }
      digits_[d] = 0;
    }
    return false;
  }

 private:
  int n_;
  std::vector<std::uint64_t> digits_;
  std::uint64_t max_mask_;
};

}  // namespace

long enumerate_patterns(int n, Round rounds,
                        const std::function<bool(const FaultPattern&)>& visit) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(rounds >= 1);
  RRFD_REQUIRE_MSG(n <= 4 && rounds <= 3,
                   "exhaustive pattern enumeration is only practical for "
                   "tiny systems (n <= 4, rounds <= 3)");
  PatternOdometer odo(n, rounds);
  long count = 0;
  do {
    ++count;
    if (!visit(odo.current())) return count;
  } while (odo.advance());
  return count;
}

ImplicationResult implies_exhaustive(const Predicate& a, const Predicate& b,
                                     int n, Round rounds) {
  ImplicationResult result;
  result.patterns_checked =
      enumerate_patterns(n, rounds, [&](const FaultPattern& p) {
        if (a.holds(p) && !b.holds(p)) {
          result.holds = false;
          result.counterexample = p;
          return false;
        }
        return true;
      });
  return result;
}

ImplicationResult implies_on_samples(Adversary& a_adversary,
                                     const Predicate& b, Round rounds,
                                     int samples) {
  RRFD_REQUIRE(samples >= 1);
  ImplicationResult result;
  for (int s = 0; s < samples; ++s) {
    FaultPattern p = record_pattern(a_adversary, rounds);
    ++result.patterns_checked;
    if (!b.holds(p)) {
      result.holds = false;
      result.counterexample = p;
      return result;
    }
  }
  return result;
}

EquivalenceResult equivalent_exhaustive(const Predicate& a, const Predicate& b,
                                        int n, Round rounds) {
  EquivalenceResult r;
  r.forward = implies_exhaustive(a, b, n, rounds);
  r.backward = implies_exhaustive(b, a, n, rounds);
  return r;
}

}  // namespace rrfd::core
