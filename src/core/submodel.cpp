#include "core/submodel.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/check.h"

namespace rrfd::core {
namespace {

// ---------------------------------------------------------------------------
// Space arithmetic
// ---------------------------------------------------------------------------

/// (2^n - 1)^digits, or nullopt when it overflows int64.
std::optional<std::int64_t> checked_space(int n, std::int64_t digits) {
  if (n >= 63) return std::nullopt;  // the digit base itself overflows
  const std::int64_t v = (std::int64_t{1} << n) - 1;
  std::int64_t space = 1;
  for (std::int64_t d = 0; d < digits; ++d) {
    if (space > std::numeric_limits<std::int64_t>::max() / v) {
      return std::nullopt;
    }
    space *= v;
  }
  return space;
}

void require_representable(int n, Round rounds) {
  RRFD_REQUIRE(0 < n && n <= kMaxProcesses);
  RRFD_REQUIRE(rounds >= 1);
  RRFD_REQUIRE_MSG(
      checked_space(n, static_cast<std::int64_t>(n) * rounds).has_value(),
      "pattern space (2^n - 1)^(n * rounds) exceeds int64 -- not "
      "exhaustively checkable");
}

// ---------------------------------------------------------------------------
// Naive reference sweep
// ---------------------------------------------------------------------------

/// Odometer over the pattern space: each "digit" is one D(i,r), ranging
/// over masks 0 .. 2^n - 2 (the full set is structurally excluded).
class PatternOdometer {
 public:
  PatternOdometer(int n, Round rounds)
      : n_(n),
        digits_(static_cast<std::size_t>(n) * static_cast<std::size_t>(rounds),
                0),
        max_mask_((n == kMaxProcesses
                       ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << n) - 1)) -
                  1) {}

  FaultPattern current() const {
    FaultPattern p(n_);
    const int rounds = static_cast<int>(digits_.size()) / n_;
    std::size_t idx = 0;
    for (Round r = 0; r < rounds; ++r) {
      RoundFaults round;
      round.reserve(static_cast<std::size_t>(n_));
      for (ProcId i = 0; i < n_; ++i) {
        round.push_back(ProcessSet::from_bits(n_, digits_[idx++]));
      }
      p.append(std::move(round));
    }
    return p;
  }

  /// Advances to the next pattern; false when wrapped around.
  bool advance() {
    for (std::size_t d = 0; d < digits_.size(); ++d) {
      if (digits_[d] < max_mask_) {
        ++digits_[d];
        return true;
      }
      digits_[d] = 0;
    }
    return false;
  }

 private:
  int n_;
  std::vector<std::uint64_t> digits_;
  std::uint64_t max_mask_;
};

// ---------------------------------------------------------------------------
// Process-permutation symmetry
// ---------------------------------------------------------------------------

/// One renaming pi, tabulated for O(1) application to a D-set mask and to
/// an observer index.
struct PermTable {
  std::vector<int> inverse;            ///< inverse[j] = pi^-1(j)
  std::vector<std::int64_t> mask_map;  ///< mask_map[m] = pi(m)
};

std::vector<PermTable> build_perm_tables(int n) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<PermTable> tables;
  do {
    PermTable t;
    t.inverse.assign(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i) {
      t.inverse[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
          i;
    }
    const std::int64_t n_masks = std::int64_t{1} << n;
    t.mask_map.assign(static_cast<std::size_t>(n_masks), 0);
    for (std::int64_t m = 0; m < n_masks; ++m) {
      std::int64_t image = 0;
      for (int i = 0; i < n; ++i) {
        if ((m >> i) & 1) {
          image |= std::int64_t{1} << perm[static_cast<std::size_t>(i)];
        }
      }
      t.mask_map[static_cast<std::size_t>(m)] = image;
    }
    tables.push_back(std::move(t));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return tables;
}

// ---------------------------------------------------------------------------
// Suffix-count memoization
// ---------------------------------------------------------------------------

/// Exact work profile of one completed suffix subtree: how many nodes,
/// leaves, and pruned inner nodes the plain DFS spends below a node in
/// that evaluator state. The deltas are orbit-independent (orbit weights
/// only scale patterns_decided, which a hit recomputes from leaves_below),
/// so one entry serves every node that reaches the same state. Entries
/// exist *only* for subtrees the DFS completed without finding a
/// counterexample or exhausting the budget -- a hit therefore also proves
/// "no counterexample below", which is what keeps refutation order and
/// budget reporting identical to the unmemoized search.
struct MemoEntry {
  std::int64_t nodes;
  std::int64_t leaves;
  std::int64_t pruned_subtrees;
};

/// FNV-1a over the canonical key bytes.
struct MemoKeyHash {
  std::size_t operator()(const std::vector<std::uint8_t>& key) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint8_t byte : key) {
      h ^= byte;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

using MemoTable =
    std::unordered_map<std::vector<std::uint8_t>, MemoEntry, MemoKeyHash>;
using MemoKeySet = std::unordered_set<std::vector<std::uint8_t>, MemoKeyHash>;

/// States below this many distinct depth-1 entries are worth seeding
/// serially before the shards run (see ShardWorker::run_seed).
constexpr std::int64_t kMaxSeedEntries = 4096;
/// Seed pass root-count gate: walking every root serially must stay a
/// negligible fraction of the total work.
constexpr std::int64_t kMaxSeedRoots = std::int64_t{1} << 20;

// ---------------------------------------------------------------------------
// Pruned, sharded DFS
// ---------------------------------------------------------------------------

/// Immutable description of one implication search, shared by all shards.
struct SearchSpec {
  const Predicate& a;
  const Predicate& b;
  int n;
  Round rounds;
  std::int64_t v;  ///< digit base 2^n - 1
  bool prune_a;    ///< cut subtrees on A kViolatedForever
  bool prune_b;    ///< cut subtrees on B kSatisfiedForever
  bool word_mode;  ///< feed evaluators raw digit words, skip ProcessSets
  bool use_symmetry;
  std::int64_t node_budget;
  /// leaves_below[d] = v^(n * (rounds - d)): complete patterns under one
  /// depth-d node.
  std::vector<std::int64_t> leaves_below;
  std::vector<PermTable> perms;  ///< empty unless use_symmetry
  /// Suffix-count memoization requested (Memo::kAuto/kOn with rounds >=
  /// 2). Each worker still probes evaluator keyability and quietly runs
  /// the plain DFS when either evaluator is keyless.
  bool use_memo = false;
  /// Depth-1 entries shared by all shards, filled by the serial seed
  /// pass; null when seeding was skipped or produced nothing.
  const MemoTable* seed = nullptr;
};

/// What one shard reports back; merged strictly in shard order.
struct ShardOutcome {
  EnumStats stats;
  std::optional<FaultPattern> counterexample;
  bool budget_exceeded = false;
  bool ran = false;
};

/// Depth-first search over one strided set of first-round indices. Owns
/// its evaluators, buffers, and counters -- shards share nothing mutable
/// (counters are published into the outcome once, at the end of run(),
/// so parallel shards never write neighbouring cache lines per node).
class ShardWorker {
 public:
  ShardWorker(const SearchSpec& spec, ShardOutcome& out)
      : spec_(spec),
        out_(out),
        a_eval_(spec.a.evaluator()),
        b_eval_(spec.b.evaluator()) {
    buf_.resize(static_cast<std::size_t>(spec.rounds) + 1);
    digits_.resize(static_cast<std::size_t>(spec.rounds) + 1);
    for (Round d = 0; d <= spec.rounds; ++d) {
      buf_[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(spec.n), ProcessSet(spec.n));
      digits_[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(spec.n), 0);
    }
  }

  /// Visits roots first, first + stride, first + 2 * stride, ... --
  /// strided rather than contiguous, because canonical first rounds are
  /// lexicographically minimal and therefore cluster at low indices; a
  /// contiguous split would hand nearly all expansion work to the first
  /// few shards.
  void run(std::int64_t first, std::int64_t stride, std::int64_t total) {
    a_eval_->begin(spec_.n, spec_.rounds);
    b_eval_->begin(spec_.n, spec_.rounds);
    init_memo();
    for (std::int64_t k = first; k < total; k += stride) {
      std::int64_t rem = k;
      for (int i = 0; i < spec_.n; ++i) {
        const std::int64_t digit = rem % spec_.v;
        rem /= spec_.v;
        digits_[1][static_cast<std::size_t>(i)] = digit;
        if (!spec_.word_mode) {
          buf_[1][static_cast<std::size_t>(i)] = ProcessSet::from_bits(
              spec_.n, static_cast<std::uint64_t>(digit));
        }
      }
      std::int64_t orbit = 1;
      if (spec_.use_symmetry) {
        orbit = orbit_if_canonical();
        if (orbit == 0) continue;  // a renaming of a smaller root
      }
      ++stats_.expanded_roots;
      if (!descend(1, orbit)) break;  // counterexample or budget
    }
    out_.stats = stats_;
    out_.counterexample = std::move(counterexample_);
    out_.budget_exceeded = budget_exceeded_;
    out_.ran = true;
  }

  /// Serial seed pass, run once before the shards: walks every root in
  /// index order and explores each *distinct* depth-1 evaluator state's
  /// subtree exactly once, publishing the resulting entries into `seed`
  /// for all shards to share. Root-level states repeat across shards
  /// (each shard sees only a strided slice of the repeats), so per-shard
  /// tables alone leave most of the redundancy on the table -- this pass
  /// is what makes the repeated-state workloads collapse. Purely an
  /// optimization: every published entry holds the exact unmemoized work
  /// profile, so shard statistics are unchanged. A subtree holding a
  /// counterexample or exceeding the node budget is *not* published (the
  /// key is poisoned instead): the owning shard replays it with the plain
  /// DFS and reports the event with exactly the unmemoized order, partial
  /// counts, and shard attribution. All seed-pass statistics, events, and
  /// evaluator state are contained here and discarded.
  void run_seed(MemoTable& seed, std::int64_t total) {
    a_eval_->begin(spec_.n, spec_.rounds);
    b_eval_->begin(spec_.n, spec_.rounds);
    init_memo();
    if (!memo_on_) return;
    seeding_ = true;
    seed_out_ = &seed;
    for (std::int64_t k = 0; k < total; ++k) {
      std::int64_t rem = k;
      for (int i = 0; i < spec_.n; ++i) {
        const std::int64_t digit = rem % spec_.v;
        rem /= spec_.v;
        digits_[1][static_cast<std::size_t>(i)] = digit;
        if (!spec_.word_mode) {
          buf_[1][static_cast<std::size_t>(i)] = ProcessSet::from_bits(
              spec_.n, static_cast<std::uint64_t>(digit));
        }
      }
      std::int64_t orbit = 1;
      if (spec_.use_symmetry) {
        orbit = orbit_if_canonical();
        if (orbit == 0) continue;
      }
      // Fresh counters per root: the budget window and any recorded
      // events must not leak from one probed subtree into the next.
      stats_ = EnumStats{};
      budget_exceeded_ = false;
      counterexample_.reset();
      descend(1, orbit);
    }
  }

 private:
  /// Orbit size of the current first round if it is canonical
  /// (lexicographically minimal among its renamings), else 0.
  std::int64_t orbit_if_canonical() const {
    const auto& d = digits_[1];
    const int n = spec_.n;
    std::int64_t stabilizer = 0;
    for (const PermTable& p : spec_.perms) {
      int cmp = 0;
      for (int j = 0; j < n; ++j) {
        const std::int64_t image =
            p.mask_map[static_cast<std::size_t>(
                d[static_cast<std::size_t>(
                    p.inverse[static_cast<std::size_t>(j)])])];
        if (image != d[static_cast<std::size_t>(j)]) {
          cmp = image < d[static_cast<std::size_t>(j)] ? -1 : 1;
          break;
        }
      }
      if (cmp < 0) return 0;  // a strictly smaller renaming exists
      if (cmp == 0) ++stabilizer;
    }
    return static_cast<std::int64_t>(spec_.perms.size()) / stabilizer;
  }

  /// A whole subtree below the current depth was decided at once.
  void count_subtree(Round depth, std::int64_t orbit, bool at_leaf) {
    stats_.patterns_decided +=
        orbit * spec_.leaves_below[static_cast<std::size_t>(depth)];
    if (at_leaf) {
      ++stats_.leaves;
    } else {
      ++stats_.pruned_subtrees;
    }
  }

  FaultPattern materialize() const {
    FaultPattern p(spec_.n);
    if (spec_.word_mode) {
      // buf_ is not maintained in word mode; rebuild from the digits.
      RoundFaults round(static_cast<std::size_t>(spec_.n),
                        ProcessSet(spec_.n));
      for (Round d = 1; d <= spec_.rounds; ++d) {
        for (int i = 0; i < spec_.n; ++i) {
          round[static_cast<std::size_t>(i)] = ProcessSet::from_bits(
              spec_.n,
              static_cast<std::uint64_t>(
                  digits_[static_cast<std::size_t>(d)]
                         [static_cast<std::size_t>(i)]));
        }
        p.append(round);
      }
    } else {
      for (Round d = 1; d <= spec_.rounds; ++d) {
        p.append(buf_[static_cast<std::size_t>(d)]);
      }
    }
    return p;
  }

  /// Pushes the depth's round assignment into one evaluator through the
  /// selected representation. In word mode the odometer digits are handed
  /// over directly -- digit masks are non-negative, so reading the int64
  /// storage as uint64 words is value-preserving (and signed/unsigned
  /// aliasing of the same width is well-defined).
  StepVerdict push_current(StepEvaluator& eval, Round depth) const {
    if (spec_.word_mode) {
      return eval.push_round_words(
          reinterpret_cast<const std::uint64_t*>(
              digits_[static_cast<std::size_t>(depth)].data()),
          spec_.n);
    }
    return eval.push_round(buf_[static_cast<std::size_t>(depth)]);
  }

  /// Evaluates the node whose round assignment the caller placed in
  /// buf_/digits_ at `depth` and recurses below it. Returns false to
  /// abort the shard (counterexample recorded or budget exhausted).
  bool descend(Round depth, std::int64_t orbit) {
    if (++stats_.nodes > spec_.node_budget) {
      budget_exceeded_ = true;
      return false;
    }
    const bool at_leaf = depth == spec_.rounds;

    StepVerdict av;
    bool a_pushed = false;
    if (a_forever_at_ >= 0) {
      av = StepVerdict::kSatisfiedForever;
    } else {
      av = push_current(*a_eval_, depth);
      a_pushed = true;
      if (av == StepVerdict::kSatisfiedForever) a_forever_at_ = depth;
    }

    // A violated: no counterexample at this leaf; with a prunable A, at
    // no leaf below either.
    if (av == StepVerdict::kViolatedForever && (at_leaf || spec_.prune_a)) {
      count_subtree(depth, orbit, at_leaf);
      if (a_pushed) {
        a_eval_->pop_round();
        if (a_forever_at_ == depth) a_forever_at_ = -1;
      }
      return true;
    }

    StepVerdict bv;
    bool b_pushed = false;
    if (b_forever_at_ >= 0) {
      bv = StepVerdict::kSatisfiedForever;
    } else {
      bv = push_current(*b_eval_, depth);
      b_pushed = true;
      if (bv == StepVerdict::kSatisfiedForever) b_forever_at_ = depth;
    }

    bool keep_going = true;
    if (at_leaf) {
      ++stats_.leaves;
      stats_.patterns_decided += orbit;
      if (bv == StepVerdict::kViolatedForever) {
        // av != kViolatedForever here: the complete pattern satisfies A
        // and violates B.
        counterexample_ = materialize();
        keep_going = false;
      }
    } else if (spec_.prune_b && bv == StepVerdict::kSatisfiedForever) {
      // B holds for every extension: no counterexample below.
      count_subtree(depth, orbit, /*at_leaf=*/false);
    } else {
      keep_going = explore_below(depth, orbit);
    }

    if (b_pushed) {
      b_eval_->pop_round();
      if (b_forever_at_ == depth) b_forever_at_ = -1;
    }
    if (a_pushed) {
      a_eval_->pop_round();
      if (a_forever_at_ == depth) a_forever_at_ = -1;
    }
    return keep_going;
  }

  /// Probes evaluator keyability once, at the empty state. Keyability is
  /// structural (constant over an evaluator's lifetime -- see the
  /// state_bytes contract), so one probe decides it for the whole search.
  void init_memo() {
    memo_on_ = false;
    if (!spec_.use_memo) return;
    key_.clear();
    if (!a_eval_->state_bytes(key_)) return;
    key_.clear();
    if (!b_eval_->state_bytes(key_)) return;
    memo_on_ = true;
    memo_.assign(static_cast<std::size_t>(spec_.rounds), MemoTable{});
  }

  /// Writes the joint evaluator state into key_. An evaluator retired by
  /// a kSatisfiedForever promise above is absorbing -- it sees no pushes
  /// below this depth -- so a tag byte replaces whatever state it froze
  /// at. A's part is length-prefixed so the concatenation with B's stays
  /// unambiguous; B's runs to the end of the buffer. Rounds remaining is
  /// *not* part of the key: tables are indexed by it instead.
  bool compose_key() {
    key_.clear();
    if (a_forever_at_ >= 0) {
      statekey::append_u8(key_, 0xFF);
    } else {
      statekey::append_u8(key_, 0x01);
      const std::size_t pos = statekey::begin_length_prefix(key_);
      if (!a_eval_->state_bytes(key_)) return false;
      statekey::end_length_prefix(key_, pos);
    }
    if (b_forever_at_ >= 0) {
      statekey::append_u8(key_, 0xFF);
    } else {
      statekey::append_u8(key_, 0x01);
      if (!b_eval_->state_bytes(key_)) return false;
    }
    return true;
  }

  /// Enumerates the whole subtree below the inner node at `depth` (whose
  /// evaluator pushes descend already performed), through the
  /// transposition tables when they are on. A hit replays the stored
  /// subtree's exact work profile; a miss explores and, if the subtree
  /// completes, stores it. Equal keys imply identical evaluator behaviour
  /// below (the state_bytes contract), hence identical subtree profiles
  /// -- so every statistic except the memo_* counters matches the plain
  /// DFS exactly.
  bool explore_below(Round depth, std::int64_t orbit) {
    if (!memo_on_) return enumerate_level(depth + 1, orbit);
    if (!compose_key()) return enumerate_level(depth + 1, orbit);
    const Round remaining = spec_.rounds - depth;
    if (seeding_ && remaining == spec_.rounds - 1) {
      return seed_subtree(depth, orbit);
    }
    MemoTable& table = memo_[static_cast<std::size_t>(remaining)];
    const MemoEntry* entry = nullptr;
    if (const auto it = table.find(key_); it != table.end()) {
      entry = &it->second;
    } else if (spec_.seed != nullptr && remaining == spec_.rounds - 1) {
      if (const auto sit = spec_.seed->find(key_); sit != spec_.seed->end()) {
        entry = &sit->second;
      }
    }
    if (entry != nullptr) {
      ++stats_.memo_hits;
      stats_.nodes += entry->nodes;
      stats_.leaves += entry->leaves;
      stats_.pruned_subtrees += entry->pruned_subtrees;
      // A stored subtree completed, deciding every leaf below its root.
      stats_.patterns_decided +=
          orbit * spec_.leaves_below[static_cast<std::size_t>(depth)];
      if (stats_.nodes > spec_.node_budget) {
        budget_exceeded_ = true;
        return false;
      }
      return true;
    }
    ++stats_.memo_misses;
    std::vector<std::uint8_t> key = key_;  // recursion reuses the scratch
    const std::int64_t nodes0 = stats_.nodes;
    const std::int64_t leaves0 = stats_.leaves;
    const std::int64_t pruned0 = stats_.pruned_subtrees;
    if (!enumerate_level(depth + 1, orbit)) return false;
    table.emplace(std::move(key),
                  MemoEntry{stats_.nodes - nodes0, stats_.leaves - leaves0,
                            stats_.pruned_subtrees - pruned0});
    ++stats_.memo_entries;
    return true;
  }

  /// Seed-pass handler for depth-1 subtrees: explores the state's
  /// subtree iff it is new, with a fresh budget window, and publishes it
  /// only on clean completion. compose_key has already filled key_.
  bool seed_subtree(Round depth, std::int64_t orbit) {
    MemoTable& seed = *seed_out_;
    if (seed.find(key_) != seed.end() ||
        poisoned_.find(key_) != poisoned_.end()) {
      return true;  // state already resolved; skip the repeat
    }
    if (static_cast<std::int64_t>(seed.size()) >= kMaxSeedEntries) {
      return true;  // state-rich workload: stop seeding, shards take over
    }
    std::vector<std::uint8_t> key = key_;
    stats_ = EnumStats{};  // per-subtree budget window; discarded
    if (!enumerate_level(depth + 1, orbit)) {
      // Counterexample or budget exhaustion below: shards must replay
      // this subtree themselves -- in their own deterministic order, with
      // the exact partial counts -- so it must never become a hit.
      poisoned_.insert(std::move(key));
      counterexample_.reset();
      budget_exceeded_ = false;
      return true;
    }
    seed.emplace(std::move(key),
                 MemoEntry{stats_.nodes, stats_.leaves,
                           stats_.pruned_subtrees});
    return true;
  }

  /// In-place odometer over all v^n round assignments at `depth`,
  /// descending into each. Process 0's digit varies fastest, matching
  /// the first-round index decoding in run().
  bool enumerate_level(Round depth, std::int64_t orbit) {
    auto& digits = digits_[static_cast<std::size_t>(depth)];
    RoundFaults& round = buf_[static_cast<std::size_t>(depth)];
    const bool sets = !spec_.word_mode;
    std::fill(digits.begin(), digits.end(), 0);
    if (sets) {
      for (int i = 0; i < spec_.n; ++i) {
        round[static_cast<std::size_t>(i)] = ProcessSet(spec_.n);
      }
    }
    for (;;) {
      if (!descend(depth, orbit)) return false;
      int i = 0;
      while (i < spec_.n &&
             digits[static_cast<std::size_t>(i)] == spec_.v - 1) {
        digits[static_cast<std::size_t>(i)] = 0;
        if (sets) round[static_cast<std::size_t>(i)] = ProcessSet(spec_.n);
        ++i;
      }
      if (i == spec_.n) return true;  // wrapped: level exhausted
      ++digits[static_cast<std::size_t>(i)];
      if (sets) {
        round[static_cast<std::size_t>(i)] = ProcessSet::from_bits(
            spec_.n,
            static_cast<std::uint64_t>(digits[static_cast<std::size_t>(i)]));
      }
    }
  }

  const SearchSpec& spec_;
  ShardOutcome& out_;
  std::unique_ptr<StepEvaluator> a_eval_;
  std::unique_ptr<StepEvaluator> b_eval_;
  /// Depth at which the evaluator promised kSatisfiedForever (no pushes
  /// below it), -1 if none.
  Round a_forever_at_ = -1;
  Round b_forever_at_ = -1;
  EnumStats stats_;  ///< shard-local; published to out_ once in run()
  std::optional<FaultPattern> counterexample_;
  bool budget_exceeded_ = false;
  std::vector<RoundFaults> buf_;                 ///< [1..rounds] in-place
  std::vector<std::vector<std::int64_t>> digits_;  ///< mask per (depth, proc)
  // --- suffix-count memoization (all idle unless memo_on_) ---
  bool memo_on_ = false;               ///< requested and both evaluators keyed
  std::vector<MemoTable> memo_;        ///< indexed by rounds remaining
  std::vector<std::uint8_t> key_;      ///< compose_key scratch
  bool seeding_ = false;               ///< run_seed mode
  MemoTable* seed_out_ = nullptr;      ///< seed pass output table
  MemoKeySet poisoned_;                ///< seed states with a contained event
};

ImplicationResult run_search(const Predicate& a, const Predicate& b, int n,
                             Round rounds, const EnumOptions& options) {
  require_representable(n, rounds);

  SearchSpec spec{a, b, n, rounds, (std::int64_t{1} << n) - 1,
                  /*prune_a=*/options.prune && a.prunable(),
                  /*prune_b=*/options.prune,
                  /*word_mode=*/options.path == EnginePath::kWord,
                  /*use_symmetry=*/false, options.node_budget,
                  /*leaves_below=*/{}, /*perms=*/{}};
  RRFD_REQUIRE_MSG(spec.node_budget > 0, "node budget must be positive");

  switch (options.symmetry) {
    case Symmetry::kOff:
      break;
    case Symmetry::kOn:
      RRFD_REQUIRE_MSG(a.symmetric() && b.symmetric(),
                       "symmetry reduction requires both predicates to be "
                       "invariant under process renaming");
      spec.use_symmetry = true;
      break;
    case Symmetry::kAuto:
      // Scanning n! renamings per first round only pays off when n! is
      // tiny next to the per-root subtree.
      spec.use_symmetry = a.symmetric() && b.symmetric() && n <= 4;
      break;
  }
  if (spec.use_symmetry) {
    RRFD_REQUIRE_MSG(n <= 8, "symmetry tables are limited to n <= 8");
    spec.perms = build_perm_tables(n);
  }

  spec.leaves_below.assign(static_cast<std::size_t>(rounds) + 1, 1);
  for (Round d = rounds - 1; d >= 0; --d) {
    spec.leaves_below[static_cast<std::size_t>(d)] =
        spec.leaves_below[static_cast<std::size_t>(d) + 1] *
        *checked_space(n, n);
  }

  const std::int64_t total_roots = *checked_space(n, n);

  // With a single round every inner node is a root, so there is no
  // suffix to memoize; kAuto and kOn agree on when memoization is sound.
  spec.use_memo = options.memo != Memo::kOff && rounds >= 2;

  // Seed pass: depth-1 states repeat *across* shards, so per-shard
  // tables alone cannot collapse that redundancy. When walking the roots
  // serially is cheap relative to the search, do it once up front and
  // hand every shard the shared depth-1 table. Runs before any shard, on
  // this thread: deterministic by construction.
  MemoTable seed;
  std::int64_t seed_entries = 0;
  if (spec.use_memo && total_roots <= kMaxSeedRoots) {
    ShardOutcome scratch;
    ShardWorker seeder(spec, scratch);
    seeder.run_seed(seed, total_roots);
    seed_entries = static_cast<std::int64_t>(seed.size());
    if (seed_entries > 0) spec.seed = &seed;
  }

  // Fixed shard count, independent of how many threads the runner uses:
  // the merge below walks shards in index order, so the result is
  // byte-identical for any execution schedule.
  const int n_shards = static_cast<int>(std::min<std::int64_t>(
      total_roots, 256));

  std::vector<ShardOutcome> outcomes(static_cast<std::size_t>(n_shards));
  // Lowest shard index that found a counterexample or ran out of budget.
  // Shards above it cannot influence the merged result (the merge stops
  // there), so workers may skip them -- purely an optimization.
  std::atomic<std::int64_t> event_floor{n_shards};
  const auto job = [&](int s) {
    // rrfd-lint: allow(atomic-justified) -- pairs with the release CAS: a
    // floor observed here implies that shard's outcome is fully written
    if (s > event_floor.load(std::memory_order_acquire)) return;
    ShardOutcome& out = outcomes[static_cast<std::size_t>(s)];
    ShardWorker worker(spec, out);
    worker.run(s, n_shards, total_roots);
    if (out.counterexample.has_value() || out.budget_exceeded) {
      // rrfd-lint: allow(atomic-justified) -- CAS loop seed; re-read on failure
      std::int64_t cur = event_floor.load(std::memory_order_relaxed);
      while (s < cur && !event_floor.compare_exchange_weak(
                            // rrfd-lint: allow(atomic-justified) -- release
                            // publishes this shard's outcome to acquirers
                            cur, s, std::memory_order_release)) {
      }
    }
  };
  if (options.runner) {
    options.runner(n_shards, job);
  } else {
    for (int s = 0; s < n_shards; ++s) job(s);
  }

  // Splice in shard order: the first shard with an event decides the
  // result; everything before it contributes statistics.
  ImplicationResult result;
  result.stats.total_roots = total_roots;
  result.stats.symmetry_used = spec.use_symmetry;
  result.stats.shards = n_shards;
  for (int s = 0; s < n_shards; ++s) {
    const ShardOutcome& o = outcomes[static_cast<std::size_t>(s)];
    RRFD_REQUIRE(o.ran);  // only post-event shards may be skipped
    result.stats.nodes += o.stats.nodes;
    result.stats.leaves += o.stats.leaves;
    result.stats.pruned_subtrees += o.stats.pruned_subtrees;
    result.stats.patterns_decided += o.stats.patterns_decided;
    result.stats.expanded_roots += o.stats.expanded_roots;
    result.stats.memo_hits += o.stats.memo_hits;
    result.stats.memo_misses += o.stats.memo_misses;
    result.stats.memo_entries += o.stats.memo_entries;
    RRFD_REQUIRE_MSG(!o.budget_exceeded,
                     "exhaustive check exceeded the per-shard node budget; "
                     "raise EnumOptions::node_budget or shrink the system");
    if (o.counterexample.has_value()) {
      result.holds = false;
      result.counterexample = o.counterexample;
      break;
    }
  }
  // Seed entries are search-wide, counted once (shard-local insertions
  // were merged above). Deterministic like everything else here: the
  // seed pass is serial and runs before any shard.
  result.stats.memo_entries += seed_entries;
  result.patterns_checked = result.stats.patterns_decided;
  return result;
}

}  // namespace

std::int64_t enumerate_patterns(
    int n, Round rounds,
    const std::function<bool(const FaultPattern&)>& visit) {
  require_representable(n, rounds);
  PatternOdometer odo(n, rounds);
  std::int64_t count = 0;
  do {
    ++count;
    if (!visit(odo.current())) return count;
  } while (odo.advance());
  return count;
}

ImplicationResult implies_exhaustive(const Predicate& a, const Predicate& b,
                                     int n, Round rounds) {
  return run_search(a, b, n, rounds, EnumOptions{});
}

ImplicationResult implies_exhaustive(const Predicate& a, const Predicate& b,
                                     int n, Round rounds,
                                     const EnumOptions& options) {
  return run_search(a, b, n, rounds, options);
}

ImplicationResult implies_on_samples(Adversary& a_adversary,
                                     const Predicate& b, Round rounds,
                                     int samples) {
  RRFD_REQUIRE(samples >= 1);
  ImplicationResult result;
  for (int s = 0; s < samples; ++s) {
    FaultPattern p = record_pattern(a_adversary, rounds);
    ++result.patterns_checked;
    if (!b.holds(p)) {
      result.holds = false;
      result.counterexample = p;
      return result;
    }
  }
  return result;
}

EquivalenceResult equivalent_exhaustive(const Predicate& a, const Predicate& b,
                                        int n, Round rounds) {
  return equivalent_exhaustive(a, b, n, rounds, EnumOptions{});
}

EquivalenceResult equivalent_exhaustive(const Predicate& a, const Predicate& b,
                                        int n, Round rounds,
                                        const EnumOptions& options) {
  EquivalenceResult r;
  r.forward = implies_exhaustive(a, b, n, rounds, options);
  r.backward = implies_exhaustive(b, a, n, rounds, options);
  return r;
}

}  // namespace rrfd::core
