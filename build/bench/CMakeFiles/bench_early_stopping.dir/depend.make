# Empty dependencies file for bench_early_stopping.
# This may be replaced when dependencies are built.
