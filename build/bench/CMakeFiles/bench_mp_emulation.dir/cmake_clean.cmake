file(REMOVE_RECURSE
  "CMakeFiles/bench_mp_emulation.dir/bench_mp_emulation.cpp.o"
  "CMakeFiles/bench_mp_emulation.dir/bench_mp_emulation.cpp.o.d"
  "bench_mp_emulation"
  "bench_mp_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mp_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
