file(REMOVE_RECURSE
  "CMakeFiles/bench_knowledge_cycle.dir/bench_knowledge_cycle.cpp.o"
  "CMakeFiles/bench_knowledge_cycle.dir/bench_knowledge_cycle.cpp.o.d"
  "bench_knowledge_cycle"
  "bench_knowledge_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knowledge_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
