# Empty dependencies file for bench_knowledge_cycle.
# This may be replaced when dependencies are built.
