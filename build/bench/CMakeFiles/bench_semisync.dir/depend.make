# Empty dependencies file for bench_semisync.
# This may be replaced when dependencies are built.
