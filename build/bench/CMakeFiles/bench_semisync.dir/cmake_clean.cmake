file(REMOVE_RECURSE
  "CMakeFiles/bench_semisync.dir/bench_semisync.cpp.o"
  "CMakeFiles/bench_semisync.dir/bench_semisync.cpp.o.d"
  "bench_semisync"
  "bench_semisync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semisync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
