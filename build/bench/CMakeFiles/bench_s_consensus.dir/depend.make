# Empty dependencies file for bench_s_consensus.
# This may be replaced when dependencies are built.
