file(REMOVE_RECURSE
  "CMakeFiles/bench_s_consensus.dir/bench_s_consensus.cpp.o"
  "CMakeFiles/bench_s_consensus.dir/bench_s_consensus.cpp.o.d"
  "bench_s_consensus"
  "bench_s_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
