file(REMOVE_RECURSE
  "CMakeFiles/bench_kset_snapshot.dir/bench_kset_snapshot.cpp.o"
  "CMakeFiles/bench_kset_snapshot.dir/bench_kset_snapshot.cpp.o.d"
  "bench_kset_snapshot"
  "bench_kset_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kset_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
