# Empty compiler generated dependencies file for bench_kset_snapshot.
# This may be replaced when dependencies are built.
