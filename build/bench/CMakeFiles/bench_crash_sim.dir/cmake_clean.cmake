file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_sim.dir/bench_crash_sim.cpp.o"
  "CMakeFiles/bench_crash_sim.dir/bench_crash_sim.cpp.o.d"
  "bench_crash_sim"
  "bench_crash_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
