# Empty dependencies file for bench_crash_sim.
# This may be replaced when dependencies are built.
