file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_from_async.dir/bench_sync_from_async.cpp.o"
  "CMakeFiles/bench_sync_from_async.dir/bench_sync_from_async.cpp.o.d"
  "bench_sync_from_async"
  "bench_sync_from_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_from_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
