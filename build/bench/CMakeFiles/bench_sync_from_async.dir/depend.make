# Empty dependencies file for bench_sync_from_async.
# This may be replaced when dependencies are built.
