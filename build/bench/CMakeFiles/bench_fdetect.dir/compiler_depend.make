# Empty compiler generated dependencies file for bench_fdetect.
# This may be replaced when dependencies are built.
