file(REMOVE_RECURSE
  "CMakeFiles/bench_fdetect.dir/bench_fdetect.cpp.o"
  "CMakeFiles/bench_fdetect.dir/bench_fdetect.cpp.o.d"
  "bench_fdetect"
  "bench_fdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
