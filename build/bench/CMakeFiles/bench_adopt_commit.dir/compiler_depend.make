# Empty compiler generated dependencies file for bench_adopt_commit.
# This may be replaced when dependencies are built.
