file(REMOVE_RECURSE
  "CMakeFiles/bench_adopt_commit.dir/bench_adopt_commit.cpp.o"
  "CMakeFiles/bench_adopt_commit.dir/bench_adopt_commit.cpp.o.d"
  "bench_adopt_commit"
  "bench_adopt_commit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adopt_commit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
