# Empty compiler generated dependencies file for bench_detector_from_kset.
# This may be replaced when dependencies are built.
