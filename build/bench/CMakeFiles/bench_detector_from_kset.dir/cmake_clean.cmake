file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_from_kset.dir/bench_detector_from_kset.cpp.o"
  "CMakeFiles/bench_detector_from_kset.dir/bench_detector_from_kset.cpp.o.d"
  "bench_detector_from_kset"
  "bench_detector_from_kset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_from_kset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
