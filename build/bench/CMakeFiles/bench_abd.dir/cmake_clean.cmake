file(REMOVE_RECURSE
  "CMakeFiles/bench_abd.dir/bench_abd.cpp.o"
  "CMakeFiles/bench_abd.dir/bench_abd.cpp.o.d"
  "bench_abd"
  "bench_abd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
