# Empty dependencies file for bench_abd.
# This may be replaced when dependencies are built.
