# Empty compiler generated dependencies file for bench_kset_oneround.
# This may be replaced when dependencies are built.
