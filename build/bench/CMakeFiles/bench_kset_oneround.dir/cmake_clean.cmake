file(REMOVE_RECURSE
  "CMakeFiles/bench_kset_oneround.dir/bench_kset_oneround.cpp.o"
  "CMakeFiles/bench_kset_oneround.dir/bench_kset_oneround.cpp.o.d"
  "bench_kset_oneround"
  "bench_kset_oneround.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kset_oneround.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
