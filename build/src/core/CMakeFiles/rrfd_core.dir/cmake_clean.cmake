file(REMOVE_RECURSE
  "CMakeFiles/rrfd_core.dir/adversaries.cpp.o"
  "CMakeFiles/rrfd_core.dir/adversaries.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/adversary.cpp.o"
  "CMakeFiles/rrfd_core.dir/adversary.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/fault_pattern.cpp.o"
  "CMakeFiles/rrfd_core.dir/fault_pattern.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/knowledge.cpp.o"
  "CMakeFiles/rrfd_core.dir/knowledge.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/pattern_io.cpp.o"
  "CMakeFiles/rrfd_core.dir/pattern_io.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/predicate.cpp.o"
  "CMakeFiles/rrfd_core.dir/predicate.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/predicates.cpp.o"
  "CMakeFiles/rrfd_core.dir/predicates.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/process_set.cpp.o"
  "CMakeFiles/rrfd_core.dir/process_set.cpp.o.d"
  "CMakeFiles/rrfd_core.dir/submodel.cpp.o"
  "CMakeFiles/rrfd_core.dir/submodel.cpp.o.d"
  "librrfd_core.a"
  "librrfd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
