file(REMOVE_RECURSE
  "librrfd_core.a"
)
