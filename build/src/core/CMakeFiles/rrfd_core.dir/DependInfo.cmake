
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversaries.cpp" "src/core/CMakeFiles/rrfd_core.dir/adversaries.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/adversaries.cpp.o.d"
  "/root/repo/src/core/adversary.cpp" "src/core/CMakeFiles/rrfd_core.dir/adversary.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/adversary.cpp.o.d"
  "/root/repo/src/core/fault_pattern.cpp" "src/core/CMakeFiles/rrfd_core.dir/fault_pattern.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/fault_pattern.cpp.o.d"
  "/root/repo/src/core/knowledge.cpp" "src/core/CMakeFiles/rrfd_core.dir/knowledge.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/knowledge.cpp.o.d"
  "/root/repo/src/core/pattern_io.cpp" "src/core/CMakeFiles/rrfd_core.dir/pattern_io.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/pattern_io.cpp.o.d"
  "/root/repo/src/core/predicate.cpp" "src/core/CMakeFiles/rrfd_core.dir/predicate.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/predicate.cpp.o.d"
  "/root/repo/src/core/predicates.cpp" "src/core/CMakeFiles/rrfd_core.dir/predicates.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/predicates.cpp.o.d"
  "/root/repo/src/core/process_set.cpp" "src/core/CMakeFiles/rrfd_core.dir/process_set.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/process_set.cpp.o.d"
  "/root/repo/src/core/submodel.cpp" "src/core/CMakeFiles/rrfd_core.dir/submodel.cpp.o" "gcc" "src/core/CMakeFiles/rrfd_core.dir/submodel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rrfd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
