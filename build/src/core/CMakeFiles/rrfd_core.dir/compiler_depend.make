# Empty compiler generated dependencies file for rrfd_core.
# This may be replaced when dependencies are built.
