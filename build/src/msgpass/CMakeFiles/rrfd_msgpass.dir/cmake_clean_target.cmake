file(REMOVE_RECURSE
  "librrfd_msgpass.a"
)
