file(REMOVE_RECURSE
  "CMakeFiles/rrfd_msgpass.dir/abd.cpp.o"
  "CMakeFiles/rrfd_msgpass.dir/abd.cpp.o.d"
  "CMakeFiles/rrfd_msgpass.dir/round_sim.cpp.o"
  "CMakeFiles/rrfd_msgpass.dir/round_sim.cpp.o.d"
  "librrfd_msgpass.a"
  "librrfd_msgpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_msgpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
