# Empty dependencies file for rrfd_msgpass.
# This may be replaced when dependencies are built.
