file(REMOVE_RECURSE
  "CMakeFiles/rrfd_util.dir/log.cpp.o"
  "CMakeFiles/rrfd_util.dir/log.cpp.o.d"
  "CMakeFiles/rrfd_util.dir/rng.cpp.o"
  "CMakeFiles/rrfd_util.dir/rng.cpp.o.d"
  "CMakeFiles/rrfd_util.dir/str.cpp.o"
  "CMakeFiles/rrfd_util.dir/str.cpp.o.d"
  "librrfd_util.a"
  "librrfd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
