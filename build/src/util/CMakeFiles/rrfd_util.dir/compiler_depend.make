# Empty compiler generated dependencies file for rrfd_util.
# This may be replaced when dependencies are built.
