file(REMOVE_RECURSE
  "librrfd_util.a"
)
