
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xform/detector_from_kset.cpp" "src/xform/CMakeFiles/rrfd_xform.dir/detector_from_kset.cpp.o" "gcc" "src/xform/CMakeFiles/rrfd_xform.dir/detector_from_kset.cpp.o.d"
  "/root/repo/src/xform/full_info.cpp" "src/xform/CMakeFiles/rrfd_xform.dir/full_info.cpp.o" "gcc" "src/xform/CMakeFiles/rrfd_xform.dir/full_info.cpp.o.d"
  "/root/repo/src/xform/pattern_checks.cpp" "src/xform/CMakeFiles/rrfd_xform.dir/pattern_checks.cpp.o" "gcc" "src/xform/CMakeFiles/rrfd_xform.dir/pattern_checks.cpp.o.d"
  "/root/repo/src/xform/round_combiner.cpp" "src/xform/CMakeFiles/rrfd_xform.dir/round_combiner.cpp.o" "gcc" "src/xform/CMakeFiles/rrfd_xform.dir/round_combiner.cpp.o.d"
  "/root/repo/src/xform/semisync_pattern.cpp" "src/xform/CMakeFiles/rrfd_xform.dir/semisync_pattern.cpp.o" "gcc" "src/xform/CMakeFiles/rrfd_xform.dir/semisync_pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rrfd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rrfd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/agreement/CMakeFiles/rrfd_agreement.dir/DependInfo.cmake"
  "/root/repo/build/src/semisync/CMakeFiles/rrfd_semisync.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpass/CMakeFiles/rrfd_msgpass.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrfd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
