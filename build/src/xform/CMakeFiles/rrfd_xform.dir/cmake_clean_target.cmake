file(REMOVE_RECURSE
  "librrfd_xform.a"
)
