file(REMOVE_RECURSE
  "CMakeFiles/rrfd_xform.dir/detector_from_kset.cpp.o"
  "CMakeFiles/rrfd_xform.dir/detector_from_kset.cpp.o.d"
  "CMakeFiles/rrfd_xform.dir/full_info.cpp.o"
  "CMakeFiles/rrfd_xform.dir/full_info.cpp.o.d"
  "CMakeFiles/rrfd_xform.dir/pattern_checks.cpp.o"
  "CMakeFiles/rrfd_xform.dir/pattern_checks.cpp.o.d"
  "CMakeFiles/rrfd_xform.dir/round_combiner.cpp.o"
  "CMakeFiles/rrfd_xform.dir/round_combiner.cpp.o.d"
  "CMakeFiles/rrfd_xform.dir/semisync_pattern.cpp.o"
  "CMakeFiles/rrfd_xform.dir/semisync_pattern.cpp.o.d"
  "librrfd_xform.a"
  "librrfd_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
