# Empty compiler generated dependencies file for rrfd_xform.
# This may be replaced when dependencies are built.
