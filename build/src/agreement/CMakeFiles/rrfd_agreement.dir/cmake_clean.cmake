file(REMOVE_RECURSE
  "CMakeFiles/rrfd_agreement.dir/phase_consensus.cpp.o"
  "CMakeFiles/rrfd_agreement.dir/phase_consensus.cpp.o.d"
  "CMakeFiles/rrfd_agreement.dir/tasks.cpp.o"
  "CMakeFiles/rrfd_agreement.dir/tasks.cpp.o.d"
  "librrfd_agreement.a"
  "librrfd_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
