# Empty dependencies file for rrfd_agreement.
# This may be replaced when dependencies are built.
