file(REMOVE_RECURSE
  "librrfd_agreement.a"
)
