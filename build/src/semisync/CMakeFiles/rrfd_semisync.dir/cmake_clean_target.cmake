file(REMOVE_RECURSE
  "librrfd_semisync.a"
)
