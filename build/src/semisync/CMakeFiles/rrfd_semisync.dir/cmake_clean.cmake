file(REMOVE_RECURSE
  "CMakeFiles/rrfd_semisync.dir/network.cpp.o"
  "CMakeFiles/rrfd_semisync.dir/network.cpp.o.d"
  "librrfd_semisync.a"
  "librrfd_semisync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_semisync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
