# Empty dependencies file for rrfd_semisync.
# This may be replaced when dependencies are built.
