file(REMOVE_RECURSE
  "librrfd_runtime.a"
)
