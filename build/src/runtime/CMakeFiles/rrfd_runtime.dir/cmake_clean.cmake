file(REMOVE_RECURSE
  "CMakeFiles/rrfd_runtime.dir/explorer.cpp.o"
  "CMakeFiles/rrfd_runtime.dir/explorer.cpp.o.d"
  "CMakeFiles/rrfd_runtime.dir/schedulers.cpp.o"
  "CMakeFiles/rrfd_runtime.dir/schedulers.cpp.o.d"
  "CMakeFiles/rrfd_runtime.dir/sim.cpp.o"
  "CMakeFiles/rrfd_runtime.dir/sim.cpp.o.d"
  "librrfd_runtime.a"
  "librrfd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
