# Empty compiler generated dependencies file for rrfd_runtime.
# This may be replaced when dependencies are built.
