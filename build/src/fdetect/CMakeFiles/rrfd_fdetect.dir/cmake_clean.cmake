file(REMOVE_RECURSE
  "CMakeFiles/rrfd_fdetect.dir/bridge.cpp.o"
  "CMakeFiles/rrfd_fdetect.dir/bridge.cpp.o.d"
  "CMakeFiles/rrfd_fdetect.dir/oracle.cpp.o"
  "CMakeFiles/rrfd_fdetect.dir/oracle.cpp.o.d"
  "librrfd_fdetect.a"
  "librrfd_fdetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrfd_fdetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
