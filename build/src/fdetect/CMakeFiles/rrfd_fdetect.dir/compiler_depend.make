# Empty compiler generated dependencies file for rrfd_fdetect.
# This may be replaced when dependencies are built.
