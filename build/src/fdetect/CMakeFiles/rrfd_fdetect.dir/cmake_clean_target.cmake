file(REMOVE_RECURSE
  "librrfd_fdetect.a"
)
