# Empty dependencies file for semisync_consensus.
# This may be replaced when dependencies are built.
