file(REMOVE_RECURSE
  "CMakeFiles/semisync_consensus.dir/semisync_consensus.cpp.o"
  "CMakeFiles/semisync_consensus.dir/semisync_consensus.cpp.o.d"
  "semisync_consensus"
  "semisync_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semisync_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
