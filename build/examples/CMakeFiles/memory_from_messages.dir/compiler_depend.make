# Empty compiler generated dependencies file for memory_from_messages.
# This may be replaced when dependencies are built.
