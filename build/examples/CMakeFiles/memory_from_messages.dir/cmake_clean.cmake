file(REMOVE_RECURSE
  "CMakeFiles/memory_from_messages.dir/memory_from_messages.cpp.o"
  "CMakeFiles/memory_from_messages.dir/memory_from_messages.cpp.o.d"
  "memory_from_messages"
  "memory_from_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_from_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
