file(REMOVE_RECURSE
  "CMakeFiles/failure_detectors.dir/failure_detectors.cpp.o"
  "CMakeFiles/failure_detectors.dir/failure_detectors.cpp.o.d"
  "failure_detectors"
  "failure_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
