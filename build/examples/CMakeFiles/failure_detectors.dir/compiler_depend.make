# Empty compiler generated dependencies file for failure_detectors.
# This may be replaced when dependencies are built.
