file(REMOVE_RECURSE
  "CMakeFiles/detector_from_kset_test.dir/detector_from_kset_test.cpp.o"
  "CMakeFiles/detector_from_kset_test.dir/detector_from_kset_test.cpp.o.d"
  "detector_from_kset_test"
  "detector_from_kset_test.pdb"
  "detector_from_kset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_from_kset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
