# Empty compiler generated dependencies file for detector_from_kset_test.
# This may be replaced when dependencies are built.
