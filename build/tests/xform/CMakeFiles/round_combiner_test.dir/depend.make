# Empty dependencies file for round_combiner_test.
# This may be replaced when dependencies are built.
