file(REMOVE_RECURSE
  "CMakeFiles/round_combiner_test.dir/round_combiner_test.cpp.o"
  "CMakeFiles/round_combiner_test.dir/round_combiner_test.cpp.o.d"
  "round_combiner_test"
  "round_combiner_test.pdb"
  "round_combiner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_combiner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
