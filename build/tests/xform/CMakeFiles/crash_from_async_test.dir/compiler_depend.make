# Empty compiler generated dependencies file for crash_from_async_test.
# This may be replaced when dependencies are built.
