file(REMOVE_RECURSE
  "CMakeFiles/crash_from_async_test.dir/crash_from_async_test.cpp.o"
  "CMakeFiles/crash_from_async_test.dir/crash_from_async_test.cpp.o.d"
  "crash_from_async_test"
  "crash_from_async_test.pdb"
  "crash_from_async_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_from_async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
