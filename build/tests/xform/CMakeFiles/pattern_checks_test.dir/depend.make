# Empty dependencies file for pattern_checks_test.
# This may be replaced when dependencies are built.
