file(REMOVE_RECURSE
  "CMakeFiles/pattern_checks_test.dir/pattern_checks_test.cpp.o"
  "CMakeFiles/pattern_checks_test.dir/pattern_checks_test.cpp.o.d"
  "pattern_checks_test"
  "pattern_checks_test.pdb"
  "pattern_checks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_checks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
