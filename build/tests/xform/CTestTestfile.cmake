# CMake generated Testfile for 
# Source directory: /root/repo/tests/xform
# Build directory: /root/repo/build/tests/xform
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/xform/round_combiner_test[1]_include.cmake")
include("/root/repo/build/tests/xform/crash_from_async_test[1]_include.cmake")
include("/root/repo/build/tests/xform/detector_from_kset_test[1]_include.cmake")
include("/root/repo/build/tests/xform/full_info_test[1]_include.cmake")
include("/root/repo/build/tests/xform/pattern_checks_test[1]_include.cmake")
include("/root/repo/build/tests/xform/iis_executor_test[1]_include.cmake")
