# CMake generated Testfile for 
# Source directory: /root/repo/tests/semisync
# Build directory: /root/repo/build/tests/semisync
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/semisync/semisync_test[1]_include.cmake")
include("/root/repo/build/tests/semisync/round_exchange_test[1]_include.cmake")
