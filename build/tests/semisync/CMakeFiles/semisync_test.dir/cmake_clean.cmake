file(REMOVE_RECURSE
  "CMakeFiles/semisync_test.dir/semisync_test.cpp.o"
  "CMakeFiles/semisync_test.dir/semisync_test.cpp.o.d"
  "semisync_test"
  "semisync_test.pdb"
  "semisync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semisync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
