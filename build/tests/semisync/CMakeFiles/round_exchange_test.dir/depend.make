# Empty dependencies file for round_exchange_test.
# This may be replaced when dependencies are built.
