file(REMOVE_RECURSE
  "CMakeFiles/round_exchange_test.dir/round_exchange_test.cpp.o"
  "CMakeFiles/round_exchange_test.dir/round_exchange_test.cpp.o.d"
  "round_exchange_test"
  "round_exchange_test.pdb"
  "round_exchange_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_exchange_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
