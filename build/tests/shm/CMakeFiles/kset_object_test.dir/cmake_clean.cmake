file(REMOVE_RECURSE
  "CMakeFiles/kset_object_test.dir/kset_object_test.cpp.o"
  "CMakeFiles/kset_object_test.dir/kset_object_test.cpp.o.d"
  "kset_object_test"
  "kset_object_test.pdb"
  "kset_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kset_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
