# Empty dependencies file for kset_object_test.
# This may be replaced when dependencies are built.
