
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fdetect/fdetect_test.cpp" "tests/fdetect/CMakeFiles/fdetect_test.dir/fdetect_test.cpp.o" "gcc" "tests/fdetect/CMakeFiles/fdetect_test.dir/fdetect_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fdetect/CMakeFiles/rrfd_fdetect.dir/DependInfo.cmake"
  "/root/repo/build/src/agreement/CMakeFiles/rrfd_agreement.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/rrfd_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rrfd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/semisync/CMakeFiles/rrfd_semisync.dir/DependInfo.cmake"
  "/root/repo/build/src/msgpass/CMakeFiles/rrfd_msgpass.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rrfd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrfd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
