file(REMOVE_RECURSE
  "CMakeFiles/fdetect_test.dir/fdetect_test.cpp.o"
  "CMakeFiles/fdetect_test.dir/fdetect_test.cpp.o.d"
  "fdetect_test"
  "fdetect_test.pdb"
  "fdetect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdetect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
