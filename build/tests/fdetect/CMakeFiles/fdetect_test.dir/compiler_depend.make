# Empty compiler generated dependencies file for fdetect_test.
# This may be replaced when dependencies are built.
