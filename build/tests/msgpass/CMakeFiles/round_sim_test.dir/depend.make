# Empty dependencies file for round_sim_test.
# This may be replaced when dependencies are built.
