file(REMOVE_RECURSE
  "CMakeFiles/round_sim_test.dir/round_sim_test.cpp.o"
  "CMakeFiles/round_sim_test.dir/round_sim_test.cpp.o.d"
  "round_sim_test"
  "round_sim_test.pdb"
  "round_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
