# CMake generated Testfile for 
# Source directory: /root/repo/tests/msgpass
# Build directory: /root/repo/build/tests/msgpass
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/msgpass/round_sim_test[1]_include.cmake")
include("/root/repo/build/tests/msgpass/abd_test[1]_include.cmake")
