# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("core")
subdirs("runtime")
subdirs("shm")
subdirs("agreement")
subdirs("msgpass")
subdirs("semisync")
subdirs("xform")
subdirs("fdetect")
