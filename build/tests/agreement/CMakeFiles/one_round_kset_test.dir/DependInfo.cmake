
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/agreement/one_round_kset_test.cpp" "tests/agreement/CMakeFiles/one_round_kset_test.dir/one_round_kset_test.cpp.o" "gcc" "tests/agreement/CMakeFiles/one_round_kset_test.dir/one_round_kset_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/agreement/CMakeFiles/rrfd_agreement.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rrfd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rrfd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rrfd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
