# Empty compiler generated dependencies file for one_round_kset_test.
# This may be replaced when dependencies are built.
