file(REMOVE_RECURSE
  "CMakeFiles/one_round_kset_test.dir/one_round_kset_test.cpp.o"
  "CMakeFiles/one_round_kset_test.dir/one_round_kset_test.cpp.o.d"
  "one_round_kset_test"
  "one_round_kset_test.pdb"
  "one_round_kset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_round_kset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
