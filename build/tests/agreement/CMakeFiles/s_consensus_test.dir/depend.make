# Empty dependencies file for s_consensus_test.
# This may be replaced when dependencies are built.
