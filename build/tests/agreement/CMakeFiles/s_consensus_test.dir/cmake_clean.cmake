file(REMOVE_RECURSE
  "CMakeFiles/s_consensus_test.dir/s_consensus_test.cpp.o"
  "CMakeFiles/s_consensus_test.dir/s_consensus_test.cpp.o.d"
  "s_consensus_test"
  "s_consensus_test.pdb"
  "s_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
