file(REMOVE_RECURSE
  "CMakeFiles/phase_consensus_test.dir/phase_consensus_test.cpp.o"
  "CMakeFiles/phase_consensus_test.dir/phase_consensus_test.cpp.o.d"
  "phase_consensus_test"
  "phase_consensus_test.pdb"
  "phase_consensus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_consensus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
