# Empty dependencies file for phase_consensus_test.
# This may be replaced when dependencies are built.
