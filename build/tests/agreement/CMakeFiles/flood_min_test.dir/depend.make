# Empty dependencies file for flood_min_test.
# This may be replaced when dependencies are built.
