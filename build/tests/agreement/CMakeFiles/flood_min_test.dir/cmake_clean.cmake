file(REMOVE_RECURSE
  "CMakeFiles/flood_min_test.dir/flood_min_test.cpp.o"
  "CMakeFiles/flood_min_test.dir/flood_min_test.cpp.o.d"
  "flood_min_test"
  "flood_min_test.pdb"
  "flood_min_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flood_min_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
