# CMake generated Testfile for 
# Source directory: /root/repo/tests/agreement
# Build directory: /root/repo/build/tests/agreement
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/agreement/tasks_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/one_round_kset_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/flood_min_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/s_consensus_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/adopt_commit_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/early_stopping_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/phase_consensus_test[1]_include.cmake")
include("/root/repo/build/tests/agreement/ablation_test[1]_include.cmake")
