# Empty dependencies file for submodel_test.
# This may be replaced when dependencies are built.
