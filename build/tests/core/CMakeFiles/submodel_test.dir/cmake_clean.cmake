file(REMOVE_RECURSE
  "CMakeFiles/submodel_test.dir/submodel_test.cpp.o"
  "CMakeFiles/submodel_test.dir/submodel_test.cpp.o.d"
  "submodel_test"
  "submodel_test.pdb"
  "submodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/submodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
