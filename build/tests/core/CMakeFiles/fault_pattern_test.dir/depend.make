# Empty dependencies file for fault_pattern_test.
# This may be replaced when dependencies are built.
