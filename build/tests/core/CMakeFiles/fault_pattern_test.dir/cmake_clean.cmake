file(REMOVE_RECURSE
  "CMakeFiles/fault_pattern_test.dir/fault_pattern_test.cpp.o"
  "CMakeFiles/fault_pattern_test.dir/fault_pattern_test.cpp.o.d"
  "fault_pattern_test"
  "fault_pattern_test.pdb"
  "fault_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
