# Empty dependencies file for process_set_fuzz_test.
# This may be replaced when dependencies are built.
