file(REMOVE_RECURSE
  "CMakeFiles/process_set_fuzz_test.dir/process_set_fuzz_test.cpp.o"
  "CMakeFiles/process_set_fuzz_test.dir/process_set_fuzz_test.cpp.o.d"
  "process_set_fuzz_test"
  "process_set_fuzz_test.pdb"
  "process_set_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_set_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
