file(REMOVE_RECURSE
  "CMakeFiles/engine_generic_test.dir/engine_generic_test.cpp.o"
  "CMakeFiles/engine_generic_test.dir/engine_generic_test.cpp.o.d"
  "engine_generic_test"
  "engine_generic_test.pdb"
  "engine_generic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_generic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
