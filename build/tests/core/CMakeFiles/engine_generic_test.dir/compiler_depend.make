# Empty compiler generated dependencies file for engine_generic_test.
# This may be replaced when dependencies are built.
