file(REMOVE_RECURSE
  "CMakeFiles/adversary_stats_test.dir/adversary_stats_test.cpp.o"
  "CMakeFiles/adversary_stats_test.dir/adversary_stats_test.cpp.o.d"
  "adversary_stats_test"
  "adversary_stats_test.pdb"
  "adversary_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversary_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
