# Empty dependencies file for adversaries_test.
# This may be replaced when dependencies are built.
