# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/process_set_test[1]_include.cmake")
include("/root/repo/build/tests/core/fault_pattern_test[1]_include.cmake")
include("/root/repo/build/tests/core/predicates_test[1]_include.cmake")
include("/root/repo/build/tests/core/adversaries_test[1]_include.cmake")
include("/root/repo/build/tests/core/engine_test[1]_include.cmake")
include("/root/repo/build/tests/core/knowledge_test[1]_include.cmake")
include("/root/repo/build/tests/core/rng_test[1]_include.cmake")
include("/root/repo/build/tests/core/submodel_test[1]_include.cmake")
include("/root/repo/build/tests/core/pattern_io_test[1]_include.cmake")
include("/root/repo/build/tests/core/process_set_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/core/engine_generic_test[1]_include.cmake")
include("/root/repo/build/tests/core/adversary_stats_test[1]_include.cmake")
