// rrfd_lint CLI: repo-aware determinism/contract static analysis.
//
// Usage:
//   rrfd_lint [--root DIR] [--json | --sarif] [--baseline FILE]
//             [--list-rules] PATH...
//
// Each PATH (file or directory, relative to --root, default cwd) is
// scanned for C++ sources (.h .hpp .cpp .cc). Exit codes: 0 clean, 1
// unsuppressed findings or baseline errors, 2 usage / I/O error. The
// file list is sorted so reports and fingerprints are byte-stable across
// platforms and filesystem enumeration orders.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"

namespace fs = std::filesystem;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--json | --sarif] [--baseline FILE] "
               "[--list-rules] PATH...\n";
  return 2;
}

bool has_cpp_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  // Build trees and hidden directories are never part of the contract.
  return name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

/// Repo-relative path with forward slashes (rule scoping keys off this).
std::string rel_path(const fs::path& p, const fs::path& root) {
  std::string s = fs::relative(p, root).generic_string();
  return s;
}

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  fs::path baseline_path;
  bool json = false;
  bool sarif = false;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif = true;
    } else if (arg == "--root") {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (arg == "--list-rules") {
      for (const rrfd::lint::Rule* rule : rrfd::lint::all_rules()) {
        std::cout << rule->name() << "\n    " << rule->description() << "\n";
      }
      std::cout << rrfd::lint::kBadSuppressionRule
                << "\n    defective or unused allow(...) comment (emitted by "
                   "the driver)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "rrfd_lint: bad --root: " << ec.message() << "\n";
    return 2;
  }

  // Collect candidate files, sorted by repo-relative path.
  std::vector<fs::path> files;
  for (const std::string& input : inputs) {
    fs::path p = fs::path(input).is_absolute() ? fs::path(input) : root / input;
    if (fs::is_regular_file(p)) {
      files.push_back(p);
      continue;
    }
    if (!fs::is_directory(p)) {
      std::cerr << "rrfd_lint: no such file or directory: " << input << "\n";
      return 2;
    }
    fs::recursive_directory_iterator it(p, ec), end;
    for (; it != end; it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() && skip_dir(it->path())) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && has_cpp_extension(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(files.size());
  for (const fs::path& p : files) {
    std::string content;
    if (!read_file(p, content)) {
      std::cerr << "rrfd_lint: cannot read " << p << "\n";
      return 2;
    }
    sources.emplace_back(rel_path(p, root), std::move(content));
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end(),
                            [](const auto& a, const auto& b) {
                              return a.first == b.first;
                            }),
                sources.end());

  rrfd::lint::Baseline baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path.is_absolute() ? baseline_path
                                               : root / baseline_path,
                   text)) {
      std::cerr << "rrfd_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = rrfd::lint::parse_baseline(text);
  }

  if (json && sarif) return usage(argv[0]);

  rrfd::lint::RunResult result = rrfd::lint::run_lint(sources, baseline);
  std::cout << (json    ? rrfd::lint::render_json(result)
                : sarif ? rrfd::lint::render_sarif(result)
                        : rrfd::lint::render_text(result));
  return result.ok() ? 0 : 1;
}
