#!/usr/bin/env bash
# Formats C++ sources with the repo's .clang-format.
#
#   tools/format.sh [--check] [FILE...]
#
# With no FILEs, operates on every tracked C++ source. --check reports
# files that would change and exits 1 without modifying anything (the
# static-analysis CI job runs this over the files a change touches).
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "tools/format.sh: clang-format not found on PATH" >&2
  exit 2
fi

check=0
files=()
for arg in "$@"; do
  case "$arg" in
    --check) check=1 ;;
    -*) echo "usage: tools/format.sh [--check] [FILE...]" >&2; exit 2 ;;
    *) files+=("$arg") ;;
  esac
done

if [ "${#files[@]}" -eq 0 ]; then
  while IFS= read -r f; do
    files+=("$f")
  done < <(git ls-files '*.cpp' '*.h' '*.hpp' '*.cc')
fi
if [ "${#files[@]}" -eq 0 ]; then
  echo "tools/format.sh: nothing to format"
  exit 0
fi

if [ "$check" -eq 1 ]; then
  bad=0
  for f in "${files[@]}"; do
    if ! clang-format --dry-run --Werror "$f" > /dev/null 2>&1; then
      echo "needs formatting: $f"
      bad=1
    fi
  done
  if [ "$bad" -ne 0 ]; then
    echo "run tools/format.sh to fix" >&2
    exit 1
  fi
  echo "formatting clean (${#files[@]} files)"
else
  clang-format -i "${files[@]}"
  echo "formatted ${#files[@]} files"
fi
