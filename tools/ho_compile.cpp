// ho_compile: operational spec in, predicate + lattice placement out.
//
// Each spec (command-line argument, or one per stdin line when no specs
// are given) is parsed, compiled to a predicate, and placed against the
// hand-written reference zoo by the exact submodel engine; the result is
// one JSON line per spec on stdout (schema "rrfd-ho-v1"):
//
//   {"schema":"rrfd-ho-v1","name":"...","spec":"loss_cap(1)",
//    "prunable":true,"symmetric":true,"n":3,"rounds":1,
//    "placement":[{"vs":"async(1)","implies":true,"implied_by":true},...]}
//
// Usage:
//   ho_compile [--n N] [--rounds R] [--threads T] [--path word|set]
//              [--no-place] [--list] [SPEC ...]
//
//   --n / --rounds   system size / pattern depth for placement (3 / 1)
//   --threads        sweep executor workers (default: RRFD_SWEEP_THREADS
//                    via the executor, serial shard order either way)
//   --path           engine representation to enumerate with (word)
//   --no-place       skip the exhaustive placement (parse + traits only)
//   --list           print the standard catalog instead of reading specs
//
// Output is deterministic for a given invocation: placement rows follow
// the fixed zoo order and the engine's shard splice is thread-count
// independent. Exit codes: 0 ok, 1 usage error, 2 bad spec.
#include <iostream>
#include <string>
#include <vector>

#include "core/submodel.h"
#include "ho/catalog.h"
#include "ho/compile.h"
#include "ho/parse.h"
#include "ho/spec.h"
#include "sweep/submodel_parallel.h"
#include "util/check.h"

namespace {

using namespace rrfd;

struct Args {
  int n = 3;
  core::Round rounds = 1;
  int threads = 0;  // 0 = executor default (RRFD_SWEEP_THREADS)
  core::EnginePath path = core::EnginePath::kWord;
  bool place = true;
  bool list = false;
  std::vector<std::string> specs;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--n N] [--rounds R] [--threads T] [--path word|set]\n"
               "          [--no-place] [--list] [SPEC ...]\n"
               "Specs are read from stdin (one per line, '#' comments) when "
               "none are given.\n";
  return 1;
}

bool parse_int_arg(const std::string& value, int min, int* out) {
  try {
    *out = std::stoi(value);
  } catch (const std::exception&) {
    return false;
  }
  return *out >= min;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Compiles one spec and prints its JSON line. Returns false (after an
/// error line on stderr) when the spec does not parse or validate.
bool emit(const std::string& text, const std::string& name, const Args& args) {
  core::PredicatePtr pred;
  std::string canonical;
  try {
    const ho::Spec spec = ho::parse_spec(text);
    canonical = ho::to_text(spec);
    pred = ho::compile(spec, name);
  } catch (const ContractViolation& e) {
    std::cerr << "ho_compile: " << e.what() << "\n";
    return false;
  }

  std::cout << "{\"schema\":\"rrfd-ho-v1\",\"name\":\""
            << json_escape(pred->name()) << "\",\"spec\":\""
            << json_escape(canonical) << "\",\"prunable\":"
            << (pred->prunable() ? "true" : "false")
            << ",\"symmetric\":" << (pred->symmetric() ? "true" : "false");
  if (args.place) {
    core::EnumOptions options;
    options.path = args.path;
    options.runner = args.threads > 0 ? sweep::shard_runner(args.threads)
                                      : sweep::shard_runner();
    std::cout << ",\"n\":" << args.n << ",\"rounds\":" << args.rounds
              << ",\"placement\":[";
    bool first = true;
    for (const ho::Placement& p :
         ho::place_in_zoo(*pred, args.n, args.rounds, options)) {
      if (!first) std::cout << ',';
      std::cout << "{\"vs\":\"" << json_escape(p.vs) << "\",\"implies\":"
                << (p.implies ? "true" : "false") << ",\"implied_by\":"
                << (p.implied_by ? "true" : "false") << "}";
      first = false;
    }
    std::cout << "]";
  }
  std::cout << "}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--n") {
      const char* v = next();
      if (v == nullptr || !parse_int_arg(v, 1, &args.n)) return usage(argv[0]);
    } else if (arg == "--rounds") {
      const char* v = next();
      if (v == nullptr || !parse_int_arg(v, 1, &args.rounds)) {
        return usage(argv[0]);
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr || !parse_int_arg(v, 1, &args.threads)) {
        return usage(argv[0]);
      }
    } else if (arg == "--path") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      const std::string path = v;
      if (path == "word") {
        args.path = core::EnginePath::kWord;
      } else if (path == "set") {
        args.path = core::EnginePath::kSet;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--no-place") {
      args.place = false;
    } else if (arg == "--list") {
      args.list = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      args.specs.push_back(arg);
    }
  }

  if (args.list) {
    for (const ho::DerivedModel& m : ho::standard_catalog()) {
      if (!emit(m.spec, m.name, args)) return 2;
    }
    return 0;
  }

  if (args.specs.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      const std::size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos || line[start] == '#') continue;
      args.specs.push_back(line);
    }
  }
  if (args.specs.empty()) return usage(argv[0]);

  for (const std::string& text : args.specs) {
    if (!emit(text, /*name=*/"", args)) return 2;
  }
  return 0;
}
