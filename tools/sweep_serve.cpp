// sweep_serve: the deterministic job server over a stdin/stdout pipe
// pair.
//
// Reads one rrfd-job-v1 request per stdin line, writes response lines
// to stdout (README "Job server" quickstart; protocol in
// src/serve/wire.h, semantics in DESIGN.md). Exits after stdin closes
// and every accepted job has delivered its terminal line, so
//
//   sweep_serve < jobs.jsonl > results.jsonl
//
// is a complete, self-draining batch run -- and two runs of the same
// job file produce byte-identical result streams (the cached
// resubmission check in CI diffs exactly that).
//
// Usage:
//   sweep_serve [--workers N] [--queue-depth N] [--client-cap N]
//               [--sweep-threads N] [--rev REV]
//
//   --workers        worker threads executing jobs        (default 2)
//   --queue-depth    admission cap, total queued jobs     (default 64)
//   --client-cap     admission cap per client             (default 8)
//   --sweep-threads  inner fan-out per job, 0 = serial    (default 0)
//   --rev            override the cache revision stamp (testing only;
//                    "unknown" disables caching, see src/serve/cache.h)
//
// Exit codes: 0 ok (all lines answered, including rejections), 1 fatal
// server error, 2 usage error.
#include <iostream>
#include <string>

#include "serve/server.h"
#include "util/check.h"
#include "util/mutex.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--workers N] [--queue-depth N] [--client-cap N]\n"
               "                  [--sweep-threads N] [--rev REV]\n"
               "Reads rrfd-job-v1 request lines on stdin, writes response "
               "lines on stdout.\n";
  return 2;
}

bool parse_int_arg(const std::string& value, int min, int* out) {
  try {
    *out = std::stoi(value);
  } catch (const std::exception&) {
    return false;
  }
  return *out >= min;
}

}  // namespace

int main(int argc, char** argv) {
  rrfd::serve::ServerOptions options;
  std::string rev;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    int parsed = 0;
    if (arg == "--workers" && value && parse_int_arg(value, 1, &parsed)) {
      options.workers = parsed;
      ++i;
    } else if (arg == "--queue-depth" && value &&
               parse_int_arg(value, 1, &parsed)) {
      options.queue.depth = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--client-cap" && value &&
               parse_int_arg(value, 1, &parsed)) {
      options.queue.per_client = static_cast<std::size_t>(parsed);
      ++i;
    } else if (arg == "--sweep-threads" && value &&
               parse_int_arg(value, 0, &parsed)) {
      options.sweep_threads = parsed;
      ++i;
    } else if (arg == "--rev" && value && *value != '\0') {
      options.git_rev = value;
      ++i;
    } else {
      return usage(argv[0]);
    }
  }

  try {
    rrfd::serve::Server server(std::move(options));
    // Response lines may arrive from worker threads; hand whole lines to
    // stdout under one lock so concurrent jobs never tear each other's
    // output (the torn-line guard on the other side of the pipe is a
    // named error, not a recovery mechanism).
    rrfd::Mutex out_mu;
    const auto sink = [&out_mu](const std::string& line) {
      rrfd::MutexLock lock(out_mu);
      std::cout << line << '\n';
      std::cout.flush();
    };
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty() || line[0] == '#') continue;
      server.submit_line(line, sink);
    }
    server.drain();
    server.shutdown();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "sweep_serve: " << error.what() << "\n";
    return 1;
  }
}
